//! The parallel window executor: the sharded engine's lanes advanced on
//! worker threads.
//!
//! # Shape
//!
//! `Sim::drive_parallel` splits the machine into the same contiguous
//! lanes as the serial sharded driver (`crate::shard`), but materializes
//! each lane as a complete per-lane [`Sim`] owning that lane's slice of
//! every per-processor array (the offset-indexed `super::Off` vectors).
//! All engine methods — `advance`, `pump_lane`, the fault layer, every
//! observability hook — run unchanged on the lane Sims; nothing in the
//! per-event hot path knows it is running under a thread.
//!
//! Within one lookahead window `[t0, t0 + W)` the lanes are causally
//! independent (see the window bound proof in `crate::shard`), so the
//! coordinator hands every lane to a worker thread and waits at a window
//! barrier. Lanes are assigned statically (`lane % workers`) and jobs are
//! published through a generation-counted atomic, so each round is one
//! release/acquire handshake — no queues, no work stealing, nothing that
//! could reorder work between runs.
//!
//! # Why the merged schedule is bit-identical for any worker count
//!
//! Everything a lane does is a pure function of its own state plus the
//! window inputs the coordinator hands it, and the coordinator is
//! single-threaded:
//!
//! * **Same partition, same windows.** The lane partition, window start
//!   `t0` (min over lane minima and the pending release), and width `W`
//!   are computed exactly as in the serial driver, from lane state that
//!   is itself deterministic by induction.
//! * **Cross-lane sends stage in outboxes.** A send whose destination
//!   lies outside the lane's range diverts to the lane's `Outbox`; its
//!   source-canonical sequence (`(src + 1) << 36 | pctr`) is drawn at the
//!   same point in the source's execution as a local arrival's, so the
//!   key — and therefore the destination's processing order — is the one
//!   a serial run would have used. The coordinator drains outboxes at the
//!   window barrier in `(src_lane, arrival, seq)` order and delivers into
//!   destination lanes before the next rebase, which reproduces the
//!   serial far-spill accounting as well.
//! * **Barriers release on the parent.** Lane Sims log barrier deltas;
//!   the coordinator drains them every round, replays them canonically
//!   (`Sim::barrier_release_time`), writes the single lifecycle record on
//!   the parent, and runs the three release phases lane-by-lane — the
//!   exact serial sequence.
//! * **Streaming emissions stage per lane.** Lane StreamStates carry an
//!   always-pass sampler in front of a `StageSink` buffer; after every
//!   round the coordinator replays the staged records through the
//!   *parent's* real sampler and sink in lane order, which equals the
//!   serial emission order (the serial round visits lanes in index
//!   order). Sampler state therefore advances in serial order and the
//!   sink output is byte-identical.
//! * **Retained logs merge by id remap.** Per-lane dense record ids get
//!   per-lane bases added at the merge; causal references are remapped
//!   with the bases of the lane that owns the *citing* processor (a
//!   record's cause always cites a record homed on that processor's
//!   lane). `ObsLog::canonicalize` then renumbers exactly as it does for
//!   the serial sharded log. The old-id tiebreak matches the serial one
//!   whenever two records of one kind from the same processor never share
//!   a primary timestamp — guaranteed for `g >= 1` models (the presets);
//!   degenerate `g = 0` same-cycle double-sends could tie.
//!
//! The only intentional divergence from the serial sharded driver is the
//! event-budget check: lanes check their own counts against the global
//! budget and the coordinator checks the sum once per round, so a run
//! within a round of the budget may fail slightly later than serially.
//! The check is still deterministic in the worker count.

use super::{
    event_key, EventHeap, EventKind, Lane, ObsState, Off, OutObs, Outbox, Sim, SimError,
    StreamState,
};
use crate::critpath::OnlineAgg;
use crate::message::Message;
use crate::obs::{BarrierRecord, Cause, ComputeRecord, MsgRecord, ObsSampling, TimerRecord};
use crate::trace::Span;
use logp_core::Cycles;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One lifecycle emission buffered by a lane during a window round,
/// replayed through the parent's sampler and sink at the barrier.
enum Staged {
    Msg(MsgRecord),
    Compute(ComputeRecord),
    Timer(TimerRecord),
    Barrier(BarrierRecord),
    Span(Span),
}

/// The staging sink installed on every lane StreamState: records append
/// to a per-lane buffer (behind a Mutex only to satisfy `ObsSink: Send`;
/// workers and coordinator never touch it concurrently) and the
/// coordinator flushes them in lane order.
struct StageSink(Arc<Mutex<Vec<Staged>>>);

impl crate::obs::ObsSink for StageSink {
    fn on_msg(&mut self, m: &MsgRecord) {
        self.0.lock().unwrap().push(Staged::Msg(*m));
    }
    fn on_compute(&mut self, c: &ComputeRecord) {
        self.0.lock().unwrap().push(Staged::Compute(*c));
    }
    fn on_barrier(&mut self, b: &BarrierRecord) {
        self.0.lock().unwrap().push(Staged::Barrier(*b));
    }
    fn on_timer(&mut self, t: &TimerRecord) {
        self.0.lock().unwrap().push(Staged::Timer(*t));
    }
    fn on_span(&mut self, s: &Span) {
        self.0.lock().unwrap().push(Staged::Span(*s));
    }
}

/// One lane's mutable slot: its Sim, the latest pump result, and the
/// wall time its worker spent executing jobs on it.
struct LaneCell {
    sim: Sim,
    pump: Result<Option<Cycles>, SimError>,
    wall_ns: u64,
}

/// One cross-lane message in flight between windows.
struct Delivery {
    time: Cycles,
    seq: u64,
    msg: Message,
    obs: OutObs,
}

// Job kinds published through `Ctrl::job` (low 8 bits; high bits are the
// generation counter).
const JOB_START_HANDLERS: u8 = 1;
const JOB_START_ADVANCE: u8 = 2;
const JOB_PUMP_FIRST: u8 = 3;
const JOB_PUMP: u8 = 4;
const JOB_REL_COLLECT: u8 = 5;
const JOB_REL_HANDLERS: u8 = 6;
const JOB_REL_ADVANCE: u8 = 7;
const JOB_EXIT: u8 = 0xFF;

/// The coordinator/worker handshake: one generation-counted job word plus
/// the job's parameters. Lane *data* synchronizes through the per-lane
/// Mutexes; these atomics only sequence the phases.
struct Ctrl {
    /// `(generation << 8) | kind`; a changed generation publishes a job.
    job: AtomicU64,
    /// Workers that have finished the current generation.
    done: AtomicU64,
    /// Window start (pump) or release instant (release phases).
    t0: AtomicU64,
    /// Window end (exclusive pump bound).
    t_end: AtomicU64,
    /// A worker panicked; the coordinator re-panics instead of spinning
    /// forever at the barrier.
    panicked: AtomicBool,
    /// The barrier cause released handlers cite (release phases).
    bcause: Mutex<Cause>,
}

impl Ctrl {
    fn new() -> Self {
        Ctrl {
            job: AtomicU64::new(0),
            done: AtomicU64::new(0),
            t0: AtomicU64::new(0),
            t_end: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            bcause: Mutex::new(Cause::Start),
        }
    }

    fn publish(&self, gen: &mut u64, kind: u8, t0: Cycles, t_end: Cycles) {
        self.t0.store(t0, Ordering::Release);
        self.t_end.store(t_end, Ordering::Release);
        self.done.store(0, Ordering::Release);
        *gen += 1;
        self.job.store((*gen << 8) | kind as u64, Ordering::Release);
    }

    /// Spin until every worker finished the published job; returns the
    /// nanoseconds the coordinator waited (the window-barrier cost).
    fn await_workers(&self, nworkers: u64) -> u64 {
        let start = std::time::Instant::now();
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < nworkers {
            if self.panicked.load(Ordering::Acquire) {
                panic!("parallel window executor: a worker thread panicked");
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(4096) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        start.elapsed().as_nanos() as u64
    }
}

/// A worker's main loop: spin for the next job generation, run it on the
/// statically owned lanes (`lane % nworkers == me`), count in. Runs until
/// [`JOB_EXIT`].
fn worker_loop<const OBS: bool, const FAULTS: bool>(
    me: usize,
    nworkers: usize,
    cells: &[Mutex<LaneCell>],
    ctrl: &Ctrl,
) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let job = loop {
            let j = ctrl.job.load(Ordering::Acquire);
            if j >> 8 != seen {
                break j;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(4096) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        };
        seen = job >> 8;
        let kind = (job & 0xFF) as u8;
        if kind == JOB_EXIT {
            ctrl.done.fetch_add(1, Ordering::AcqRel);
            return;
        }
        let t0 = ctrl.t0.load(Ordering::Acquire);
        let t_end = ctrl.t_end.load(Ordering::Acquire);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for li in (me..cells.len()).step_by(nworkers) {
                let mut guard = cells[li].lock().unwrap();
                let cell = &mut *guard;
                let start = std::time::Instant::now();
                match kind {
                    JOB_START_HANDLERS => cell.sim.start_handlers::<OBS, FAULTS>(),
                    JOB_START_ADVANCE => cell.sim.start_advances::<OBS, FAULTS>(),
                    JOB_PUMP_FIRST | JOB_PUMP => {
                        if kind == JOB_PUMP_FIRST {
                            cell.sim.rebase_lane(0, t0);
                        }
                        cell.pump = cell.sim.pump_lane::<OBS, FAULTS>(0, t_end);
                    }
                    JOB_REL_COLLECT => cell.sim.barrier_release_collect(t0),
                    JOB_REL_HANDLERS => {
                        let bcause = *ctrl.bcause.lock().unwrap();
                        cell.sim.barrier_release_handlers::<OBS>(bcause);
                    }
                    JOB_REL_ADVANCE => cell.sim.barrier_release_advance::<OBS, FAULTS>(),
                    _ => unreachable!("unknown job kind"),
                }
                cell.wall_ns += start.elapsed().as_nanos() as u64;
            }
        }));
        if r.is_err() {
            ctrl.panicked.store(true, Ordering::Release);
            ctrl.done.fetch_add(1, Ordering::AcqRel);
            return;
        }
        ctrl.done.fetch_add(1, Ordering::AcqRel);
    }
}

impl Sim {
    /// The serial driver's prologue handler pass, restricted to this
    /// Sim's processor range.
    fn start_handlers<const OBS: bool, const FAULTS: bool>(&mut self) {
        for q in self.proc_range() {
            let p = q as logp_core::ProcId;
            if FAULTS && self.procs[q].halted {
                continue;
            }
            self.run_handler::<OBS, _>(p, Cause::Start, |prog, ctx| prog.on_start(ctx));
        }
    }

    /// The serial driver's prologue advance pass, restricted to this
    /// Sim's processor range.
    fn start_advances<const OBS: bool, const FAULTS: bool>(&mut self) {
        for q in self.proc_range() {
            self.advance::<OBS, FAULTS, true>(q as logp_core::ProcId);
        }
    }

    /// Replay staged lane emissions (in lane order == serial order)
    /// through the parent's real sampler and sink.
    fn flush_stages(&mut self, stages: &[Arc<Mutex<Vec<Staged>>>]) {
        if stages.is_empty() {
            return;
        }
        let obs = self.obs.as_deref_mut().expect("stages imply observability");
        let st = obs.stream.as_deref_mut().expect("stages imply streaming");
        for stage in stages {
            let mut buf = std::mem::take(&mut *stage.lock().unwrap());
            for s in buf.drain(..) {
                match s {
                    Staged::Msg(rec) => {
                        if let Some(out) = st.sampler.offer_msg(rec) {
                            st.emitted += 1;
                            st.sink.on_msg(&out);
                        }
                    }
                    Staged::Compute(rec) => {
                        if st.sampler.pass_proc(rec.proc) {
                            st.emitted += 1;
                            st.sink.on_compute(&rec);
                        }
                    }
                    Staged::Timer(rec) => {
                        if st.sampler.pass_proc(rec.proc) {
                            st.emitted += 1;
                            st.sink.on_timer(&rec);
                        }
                    }
                    Staged::Barrier(rec) => {
                        if st.sampler.pass_proc(rec.last_proc) {
                            st.emitted += 1;
                            st.sink.on_barrier(&rec);
                        }
                    }
                    Staged::Span(sp) => {
                        if st.sampler.spans_enabled() && st.sampler.pass_proc(sp.proc) {
                            st.sink.on_span(&sp);
                        }
                    }
                }
            }
            // Hand the drained allocation back for the next round.
            let mut slot = stage.lock().unwrap();
            if slot.capacity() < buf.capacity() {
                *slot = buf;
            }
        }
    }

    /// Drain every lane's outbox at the window barrier and deliver the
    /// staged messages into their destination lanes, in canonical
    /// `(src_lane, arrival, seq)` order, exactly as the destination's
    /// own stash-and-schedule path would have (the sequence was drawn at
    /// the source, so the key is already the serial one). Runs before the
    /// next window's rebase so ring-vs-far placement matches the serial
    /// engine's mid-window pushes.
    fn exchange_outboxes<const OBS: bool>(&mut self, cells: &[Mutex<LaneCell>], per: usize) {
        let n = cells.len();
        let mut inbound: Vec<Vec<Delivery>> = (0..n).map(|_| Vec::new()).collect();
        let mut any = false;
        for cell in cells {
            let mut guard = cell.lock().unwrap();
            let out = guard
                .sim
                .out
                .as_deref_mut()
                .expect("lane Sims carry outboxes");
            if out.events.is_empty() {
                continue;
            }
            any = true;
            let mut events = std::mem::take(&mut out.events);
            let mut msgs = std::mem::take(&mut out.msgs);
            let mut obsv = std::mem::take(&mut out.obs);
            events.sort_unstable_by_key(|&(t, s, _)| (t, s));
            for (time, seq, idx) in events {
                let msg = msgs[idx as usize].take().expect("outbox slot occupied");
                let obs = if (idx as usize) < obsv.len() {
                    std::mem::take(&mut obsv[idx as usize])
                } else {
                    OutObs::default()
                };
                let dl = msg.dst as usize / per;
                inbound[dl].push(Delivery {
                    time,
                    seq,
                    msg,
                    obs,
                });
            }
        }
        if !any {
            return;
        }
        for (dl, list) in inbound.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let mut guard = cells[dl].lock().unwrap();
            let sim = &mut guard.sim;
            for d in list {
                let dst = d.msg.dst;
                let slot = sim.stash_msg_sharded(dst, d.msg);
                if OBS {
                    let obs = sim.obs.as_deref_mut().expect("OBS implies lane obs");
                    let OutObs { val, rec, infl } = d.obs;
                    let val = if obs.msg_log {
                        if let Some(st) = obs.stream.as_deref_mut() {
                            let b = infl.expect("streaming outbox payload");
                            let id = b.0.id;
                            st.inflight.insert(id, *b);
                            id
                        } else {
                            let mut rec = *rec.expect("retained outbox payload");
                            let id = obs.log.msgs.len() as u64;
                            rec.id = id;
                            obs.log.msgs.push(rec);
                            id
                        }
                    } else {
                        val
                    };
                    let s = slot as usize;
                    if obs.msg_slab_obs.len() <= s {
                        obs.msg_slab_obs.resize(s + 1, 0);
                    }
                    obs.msg_slab_obs[s] = val;
                }
                sim.push_lane(dst, event_key(d.time, 0, d.seq), EventKind::Arrive(slot));
            }
        }
    }

    /// Build the per-lane Sims, moving this Sim's per-processor state
    /// into offset-indexed lane slices. Returns the lane cells and (when
    /// streaming) the per-lane stage buffers.
    #[allow(clippy::type_complexity)]
    fn build_lane_cells<const OBS: bool, const FAULTS: bool>(
        &mut self,
        per: usize,
        n: usize,
        streaming: bool,
        aggregate: bool,
    ) -> (Vec<Mutex<LaneCell>>, Vec<Arc<Mutex<Vec<Staged>>>>) {
        let p = self.model.p as usize;
        let bspan = self.ring_span();
        let mut procs = std::mem::replace(&mut self.procs, Off::from(Vec::new()))
            .into_vec()
            .into_iter();
        let mut scales = std::mem::take(&mut self.proc_scale).into_vec().into_iter();
        let plan = self.faults.as_deref().map(|f| f.plan.clone());
        let mut cells = Vec::with_capacity(n);
        let mut stages = Vec::new();
        for li in 0..n {
            let first = li * per;
            let last = ((li + 1) * per).min(p) - 1;
            let len = last - first + 1;
            let stream = streaming.then(|| {
                let stage: Arc<Mutex<Vec<Staged>>> = Arc::new(Mutex::new(Vec::new()));
                stages.push(stage.clone());
                Box::new(StreamState {
                    sink: Box::new(StageSink(stage)),
                    sampler: crate::obs::Sampler::new(ObsSampling::All),
                    agg: aggregate.then(|| OnlineAgg::for_range(first, len, self.config.agg_grid)),
                    sharded: true,
                    next_msg: 0,
                    next_compute: 0,
                    next_timer: 0,
                    next_barrier: 0,
                    sctr: Off::with_base(vec![0; len], first),
                    inflight: std::collections::HashMap::new(),
                    timers_live: std::collections::HashMap::new(),
                    emitted: 0,
                })
            });
            let sim = Sim {
                model: self.model,
                config: self.config.clone(),
                procs: Off::with_base(procs.by_ref().take(len).collect(), first),
                heap: EventHeap::default(),
                seq: 0,
                now: 0,
                in_flight_from: Vec::new(),
                in_flight_to: Vec::new(),
                outstanding_to: Vec::new(),
                dst_waiters: Vec::new(),
                rng: SmallRng::seed_from_u64(self.config.seed),
                proc_scale: Off::with_base(scales.by_ref().take(len).collect(), first),
                trace: crate::trace::Trace::default(),
                stats: crate::trace::SimStats::default(),
                barrier_count: 0,
                alive: len as u32,
                capacity: self.capacity,
                cmd_scratch: Vec::with_capacity(8),
                waiter_scratch: Vec::new(),
                released_scratch: Vec::new(),
                msg_slab: Vec::new(),
                msg_free: Vec::new(),
                max_outstanding: self.max_outstanding,
                hier: self.hier.clone(),
                faults: (FAULTS).then(|| {
                    Box::new(crate::faults::FaultState::for_range(
                        plan.clone().expect("FAULTS implies a fault plan"),
                        first,
                        len,
                    ))
                }),
                obs: (OBS).then(|| Box::new(ObsState::for_lane(first, len, &self.config, stream))),
                lanes: vec![Lane {
                    buckets: vec![Vec::new(); bspan as usize],
                    bbase: 0,
                    bcount: 0,
                    far: EventHeap::with_capacity(len + 16),
                    slab: Vec::with_capacity(2 * len + 16),
                    free: Vec::with_capacity(2 * len + 16),
                }],
                lane_of: Off::with_base(vec![0; len], first),
                pctr: Off::with_base(vec![0; len], first),
                rings: Off::with_base(vec![VecDeque::new(); len], first),
                bdeltas: Vec::new(),
                out: Some(Box::new(Outbox::default())),
                #[cfg(debug_assertions)]
                arena_reallocs: 0,
                v_windows: 0,
                v_fast_forwards: 0,
                v_bucket_max: 0,
                v_far_spills: 0,
                v_lane_events: vec![0; 1],
                v_workers: 0,
                v_lane_wall_ns: Vec::new(),
                v_barrier_wait_ns: 0,
                v_capacity_relaxed: 0,
            };
            cells.push(Mutex::new(LaneCell {
                sim,
                pump: Ok(None),
                wall_ns: 0,
            }));
        }
        (cells, stages)
    }

    /// Merge the finished lane Sims back into this Sim: per-processor
    /// arrays reassemble in lane order, scalar stats sum, retained
    /// lifecycle logs renumber with per-lane id bases, streaming state
    /// (in-flight records, armed timers, the online aggregate) folds into
    /// the parent stream.
    fn merge_lanes<const OBS: bool, const FAULTS: bool>(
        &mut self,
        cells: Vec<Mutex<LaneCell>>,
        per: usize,
        streaming: bool,
        mut parent_agg: Option<OnlineAgg>,
    ) {
        let n = cells.len();
        let p = self.model.p as usize;
        let mut procs = Vec::with_capacity(p);
        let mut scales = Vec::with_capacity(p);
        self.v_lane_events = Vec::with_capacity(n);
        self.v_lane_wall_ns = Vec::with_capacity(n);
        self.alive = 0;
        self.barrier_count = 0;
        // Per-lane retained-log id bases, filled in lane order; the cause
        // remap below needs the full table (a migrated cross-lane record
        // cites records homed on its *source's* lane).
        let mut bases: Vec<(u64, u64, u64)> = Vec::with_capacity(n);
        let mut lane_logs = Vec::with_capacity(n);
        for cell in cells {
            let cell = cell.into_inner().unwrap();
            let mut sim = cell.sim;
            procs.extend(std::mem::replace(&mut sim.procs, Off::from(Vec::new())).into_vec());
            scales.extend(std::mem::take(&mut sim.proc_scale).into_vec());
            self.stats.events += sim.stats.events;
            self.stats.total_msgs += sim.stats.total_msgs;
            self.stats.msgs_dropped += sim.stats.msgs_dropped;
            self.stats.msgs_duplicated += sim.stats.msgs_duplicated;
            self.stats.msgs_delayed += sim.stats.msgs_delayed;
            self.stats.procs_crashed += sim.stats.procs_crashed;
            self.stats.max_inflight_per_src = self
                .stats
                .max_inflight_per_src
                .max(sim.stats.max_inflight_per_src);
            self.stats.max_inflight_per_dst = self
                .stats
                .max_inflight_per_dst
                .max(sim.stats.max_inflight_per_dst);
            self.alive += sim.alive;
            self.barrier_count += sim.barrier_count;
            self.v_bucket_max = self.v_bucket_max.max(sim.v_bucket_max);
            self.v_far_spills += sim.v_far_spills;
            self.v_lane_events.push(sim.v_lane_events[0]);
            self.v_lane_wall_ns.push(cell.wall_ns);
            #[cfg(debug_assertions)]
            {
                self.arena_reallocs += sim.arena_reallocs;
            }
            self.trace.spans.append(&mut sim.trace.spans);
            if FAULTS {
                let pf = self
                    .faults
                    .as_deref_mut()
                    .expect("FAULTS implies a fault plan");
                let lf = sim.faults.as_deref().expect("lane fault state");
                let base = sim.rings.base();
                for i in 0..sim.rings.len() {
                    pf.crashed[base + i] = lf.crashed[base + i];
                }
            }
            if OBS {
                let pobs = self.obs.as_deref_mut().expect("OBS implies obs state");
                let mut lobs = *sim.obs.take().expect("OBS implies lane obs");
                pobs.metrics.absorb(&lobs.metrics);
                if let Some(mut lst) = lobs.stream.take() {
                    let pst = pobs
                        .stream
                        .as_deref_mut()
                        .expect("lane streams imply a parent stream");
                    pst.inflight.extend(lst.inflight.drain());
                    pst.timers_live.extend(lst.timers_live.drain());
                    if let (Some(pa), Some(la)) = (parent_agg.as_mut(), lst.agg.take()) {
                        pa.absorb(la);
                    }
                } else if pobs.msg_log {
                    let prev = bases.last().copied().unwrap_or((0, 0, 0));
                    let prev_lens = lane_logs
                        .last()
                        .map(|l: &crate::obs::ObsLog| {
                            (
                                l.msgs.len() as u64,
                                l.computes.len() as u64,
                                l.timers.len() as u64,
                            )
                        })
                        .unwrap_or((0, 0, 0));
                    bases.push((
                        prev.0 + prev_lens.0,
                        prev.1 + prev_lens.1,
                        prev.2 + prev_lens.2,
                    ));
                    debug_assert!(lobs.log.barriers.is_empty());
                    lane_logs.push(lobs.log);
                }
            }
        }
        self.procs = Off::from(procs);
        self.proc_scale = Off::from(scales);
        if OBS {
            let pobs = self.obs.as_deref_mut().expect("OBS implies obs state");
            if streaming {
                if let Some(pst) = pobs.stream.as_deref_mut() {
                    pst.agg = parent_agg;
                }
            } else if pobs.msg_log {
                // Retained mode: append lane logs with their id bases and
                // remap causal references through the owning lane's bases.
                let remap = |c: &mut Cause, owner: usize| {
                    let (mb, cb, tb) = bases[owner / per];
                    match *c {
                        Cause::Msg(id) => *c = Cause::Msg(id + mb),
                        Cause::Compute(id) => *c = Cause::Compute(id + cb),
                        Cause::Retry(id) => *c = Cause::Retry(id + tb),
                        Cause::Start | Cause::Barrier(_) => {}
                    }
                };
                for (li, log) in lane_logs.into_iter().enumerate() {
                    let (mb, cb, tb) = bases[li];
                    for mut r in log.msgs {
                        r.id += mb;
                        // A send's cause cites the handler that issued it,
                        // which ran on the *source* processor's lane (the
                        // record itself is homed on the destination's).
                        remap(&mut r.cause, r.src as usize);
                        pobs.log.msgs.push(r);
                    }
                    for mut r in log.computes {
                        r.id += cb;
                        remap(&mut r.cause, r.proc as usize);
                        pobs.log.computes.push(r);
                    }
                    for mut r in log.timers {
                        r.id += tb;
                        remap(&mut r.cause, r.proc as usize);
                        pobs.log.timers.push(r);
                    }
                }
                // Barrier records were written by the coordinator on the
                // parent; their causes cite the binding entrant's lane.
                let mut barriers = std::mem::take(&mut pobs.log.barriers);
                for b in &mut barriers {
                    remap(&mut b.cause, b.last_proc as usize);
                }
                pobs.log.barriers = barriers;
            }
        }
    }

    /// The parallel window driver: the serial sharded loop with every
    /// per-lane pass executed by `workers` threads. See the module
    /// documentation for the structure and the determinism argument.
    #[inline(never)]
    pub(crate) fn drive_parallel<const OBS: bool, const FAULTS: bool>(
        &mut self,
        workers: u32,
    ) -> Result<(), SimError> {
        let p = self.model.p as usize;
        let want = (self.config.shards as usize).min(p);
        let per = self.lane_width(want);
        let n = p.div_ceil(per);
        let nworkers = (workers as usize).clamp(1, n);
        self.v_workers = nworkers as u32;
        let w = self.window_width();
        let mut alive_base = self.alive as i64;
        // Streaming runs keep the parent's sampler and sink live (fed in
        // serial order by the stage flush); the parent's aggregate is
        // held out here so the lifecycle record at each release consults
        // the binding *lane's* aggregate instead.
        let mut streaming = false;
        let mut parent_agg: Option<OnlineAgg> = None;
        if OBS {
            if let Some(obs) = self.obs.as_deref_mut() {
                if let Some(st) = obs.stream.as_deref_mut() {
                    streaming = true;
                    parent_agg = st.agg.take();
                }
            }
        }
        let aggregate = parent_agg.is_some();
        let (cells, stages) = self.build_lane_cells::<OBS, FAULTS>(per, n, streaming, aggregate);
        if FAULTS {
            // Crash schedule, exactly as the serial driver routes it —
            // earliest crash per processor, t = 0 applied before the
            // prologue, later ones parked in the owner's lane calendar.
            let mut crashes = self
                .faults
                .as_deref()
                .expect("FAULTS implies a fault plan")
                .plan
                .crashes
                .clone();
            crashes.sort_unstable_by_key(|&(cp, t)| (cp, t));
            crashes.dedup_by_key(|&mut (cp, _)| cp);
            for (cp, t) in crashes {
                let li = cp as usize / per;
                let sim = &mut cells[li].lock().unwrap().sim;
                if t == 0 {
                    sim.apply_crash::<OBS, true>(cp);
                } else {
                    sim.push_lane(cp, event_key(t, 0, cp as u64), EventKind::Crash(cp));
                }
            }
        }
        let ctrl = Ctrl::new();
        let mut gen = 0u64;
        let completion = std::thread::scope(|s| -> Result<Cycles, SimError> {
            for me in 0..nworkers {
                let cells = &cells;
                let ctrl = &ctrl;
                s.spawn(move || worker_loop::<OBS, FAULTS>(me, nworkers, cells, ctrl));
            }
            let mut run = |this: &mut Sim, gen: &mut u64| -> Result<Cycles, SimError> {
                // Prologue: handlers (no emissions), then advances.
                ctrl.publish(gen, JOB_START_HANDLERS, 0, 0);
                this.v_barrier_wait_ns += ctrl.await_workers(nworkers as u64);
                ctrl.publish(gen, JOB_START_ADVANCE, 0, 0);
                this.v_barrier_wait_ns += ctrl.await_workers(nworkers as u64);
                this.flush_stages(&stages);
                // Prologue sends happen at t = 0, *before* the first
                // window's start — the `arrival >= t0 + W` bound does not
                // cover them, so their cross-lane arrivals can land inside
                // the first window and must be delivered before it pumps.
                this.exchange_outboxes::<OBS>(&cells, per);
                let mut pending_release: Option<Cycles> = None;
                let mut completion: Cycles = 0;
                let mut prev_end: Option<Cycles> = None;
                loop {
                    // The quorum may already be complete before any
                    // window runs: if every processor enters a barrier
                    // straight from `on_start` (or from a release
                    // handler), no event is scheduled anywhere and the
                    // release instant is the only pending instant.
                    if pending_release.is_none() {
                        let mut alive_sum = 0u32;
                        let mut count_sum = 0u32;
                        for cell in &cells {
                            let cell = &mut *cell.lock().unwrap();
                            this.bdeltas.append(&mut cell.sim.bdeltas);
                            alive_sum += cell.sim.alive;
                            count_sum += cell.sim.barrier_count;
                        }
                        if alive_sum > 0 && count_sum == alive_sum {
                            pending_release = Some(this.barrier_release_time(alive_base));
                        }
                    }
                    let mut t0 = pending_release;
                    for cell in &cells {
                        if let Some(t) = cell.lock().unwrap().sim.lane_min(0) {
                            if t0.is_none_or(|b| t < b) {
                                t0 = Some(t);
                            }
                        }
                    }
                    let Some(t0) = t0 else {
                        break;
                    };
                    this.v_windows += 1;
                    if prev_end.is_some_and(|e| t0 > e) {
                        this.v_fast_forwards += 1;
                    }
                    let t_end = t0.saturating_add(w);
                    prev_end = Some(t_end);
                    let mut first = true;
                    loop {
                        let kind = if first { JOB_PUMP_FIRST } else { JOB_PUMP };
                        first = false;
                        ctrl.publish(gen, kind, t0, t_end);
                        this.v_barrier_wait_ns += ctrl.await_workers(nworkers as u64);
                        let mut progressed = false;
                        let mut err: Option<SimError> = None;
                        let mut events_sum = 0u64;
                        let mut alive_sum = 0u32;
                        let mut count_sum = 0u32;
                        for cell in &cells {
                            let cell = &mut *cell.lock().unwrap();
                            match std::mem::replace(&mut cell.pump, Ok(None)) {
                                Ok(Some(t)) => {
                                    completion = completion.max(t);
                                    progressed = true;
                                }
                                Ok(None) => {}
                                Err(e) => {
                                    if err.is_none() {
                                        err = Some(e);
                                    }
                                }
                            }
                            this.bdeltas.append(&mut cell.sim.bdeltas);
                            events_sum += cell.sim.stats.events;
                            alive_sum += cell.sim.alive;
                            count_sum += cell.sim.barrier_count;
                        }
                        if let Some(e) = err {
                            return Err(e);
                        }
                        if events_sum > this.config.max_events {
                            return Err(SimError::MaxEventsExceeded {
                                limit: this.config.max_events,
                            });
                        }
                        this.flush_stages(&stages);
                        if pending_release.is_none() && alive_sum > 0 && count_sum == alive_sum {
                            pending_release = Some(this.barrier_release_time(alive_base));
                        }
                        if let Some(t_rel) = pending_release {
                            if t_rel < t_end {
                                // The serial release sequence: lifecycle
                                // record on the parent, then the three
                                // phases across all lanes in order.
                                this.now = t_rel;
                                let bcause = if OBS {
                                    this.record_barrier_release()
                                } else {
                                    Cause::Start
                                };
                                if OBS && aggregate {
                                    if let Cause::Barrier(id) = bcause {
                                        this.barrier_agg_split(&cells, per, id, t_rel);
                                    }
                                }
                                *ctrl.bcause.lock().unwrap() = bcause;
                                ctrl.publish(gen, JOB_REL_COLLECT, t_rel, t_end);
                                this.v_barrier_wait_ns += ctrl.await_workers(nworkers as u64);
                                this.flush_stages(&stages);
                                ctrl.publish(gen, JOB_REL_HANDLERS, t_rel, t_end);
                                this.v_barrier_wait_ns += ctrl.await_workers(nworkers as u64);
                                ctrl.publish(gen, JOB_REL_ADVANCE, t_rel, t_end);
                                this.v_barrier_wait_ns += ctrl.await_workers(nworkers as u64);
                                this.flush_stages(&stages);
                                completion = completion.max(t_rel);
                                // The parent's deltas predate the release
                                // and are consumed. Entries pushed by the
                                // release handlers themselves (a processor
                                // can re-enter the next round, or halt,
                                // inside `on_barrier_release`) are still
                                // parked in the cells; they belong to the
                                // next round's replay, so they are kept
                                // and the baseline backs out their
                                // alive-deltas.
                                this.bdeltas.clear();
                                let mut alive = 0i64;
                                for cell in &cells {
                                    let cell = &mut *cell.lock().unwrap();
                                    alive += cell.sim.alive as i64;
                                    alive -= cell
                                        .sim
                                        .bdeltas
                                        .iter()
                                        .map(|d| d.dalive as i64)
                                        .sum::<i64>();
                                }
                                alive_base = alive;
                                pending_release = None;
                                progressed = true;
                            }
                        }
                        if !progressed {
                            break;
                        }
                    }
                    this.exchange_outboxes::<OBS>(&cells, per);
                }
                // Ring-back completion: the latest release instant still
                // parked in any source ring (see the serial driver).
                for cell in &cells {
                    for ring in cell.lock().unwrap().sim.rings.iter() {
                        if let Some(&r) = ring.back() {
                            completion = completion.max(r);
                        }
                    }
                }
                Ok(completion)
            };
            let result = run(self, &mut gen);
            ctrl.publish(&mut gen, JOB_EXIT, 0, 0);
            ctrl.await_workers(nworkers as u64);
            result
        })?;
        self.merge_lanes::<OBS, FAULTS>(cells, per, streaming, parent_agg);
        self.now = completion;
        self.canonicalize_results();
        Ok(())
    }

    /// The aggregate half of a barrier release under streaming + online
    /// aggregation: the parent's `record_barrier_release` skipped its
    /// (held-out) aggregate, so the binding entrant's lane attributes the
    /// release window and every other lane learns the released cumulative
    /// (so later commands citing this barrier resolve lane-locally).
    fn barrier_agg_split(&mut self, cells: &[Mutex<LaneCell>], per: usize, id: u64, t_rel: Cycles) {
        let (last_proc, submit, enter, cause) = self
            .obs
            .as_deref()
            .expect("streaming implies obs")
            .barrier_last;
        let rec = BarrierRecord {
            id,
            last_proc,
            submit,
            enter,
            release: t_rel,
            cause,
        };
        let bl = last_proc as usize / per;
        let cum = {
            let cell = &mut *cells[bl].lock().unwrap();
            cell.sim
                .obs
                .as_deref_mut()
                .and_then(|o| o.stream.as_deref_mut())
                .and_then(|st| st.agg.as_mut())
                .expect("aggregate lanes carry aggregates")
                .on_barrier_release(&rec)
        };
        for (li, cell) in cells.iter().enumerate() {
            if li == bl {
                continue;
            }
            let cell = &mut *cell.lock().unwrap();
            if let Some(agg) = cell
                .sim
                .obs
                .as_deref_mut()
                .and_then(|o| o.stream.as_deref_mut())
                .and_then(|st| st.agg.as_mut())
            {
                agg.on_barrier_external(id, cum);
            }
        }
    }
}
