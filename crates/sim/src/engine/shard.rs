//! The sharded lane engine: per-shard event lanes synchronized by
//! conservative `L`-lookahead windows.
//!
//! # Why lanes are legal
//!
//! The LogP network is the *only* channel between processors, and it has
//! a hard lower bound: a message injected at time `s` costs `o` cycles of
//! send overhead and at least `L - jitter` cycles of flight, so no
//! arrival it causes can land before `s + W` where
//!
//! ```text
//! W = o + (L - min(jitter, L - 1))        (always >= 1)
//! ```
//!
//! Partition the processors into contiguous *lanes*, each with its own
//! event heap and message slab. Within a half-open window `[T, T + W)`
//! the lanes are causally independent: any cross-processor influence
//! created inside the window (an arrival) lands at or after `T + W`, i.e.
//! in a later window. Each lane can therefore drain its own heap
//! event-by-event through the window with no global ordering at all, and
//! cross-lane arrivals are pushed directly into the destination's lane
//! heap for a future window. The next window starts at the earliest
//! pending event across all lanes — empty stretches are skipped in one
//! step (quiescence fast-forward), so a mostly-idle machine costs nothing
//! per idle cycle.
//!
//! # Why results are lane-count-invariant
//!
//! Bit-identical results across lane counts require that nothing
//! observable depends on *which* lane processed an event first:
//!
//! * **Canonical keys.** Every heap key's tiebreak is
//!   `(proc + 1) << 36 | ctr` with `ctr` a per-processor issuance
//!   counter, so same-cycle ordering inside any one heap is a pure
//!   function of processor-local execution order — identical however the
//!   processors are grouped. Arrivals carry their *source's* counter and
//!   reuse it as the destination inbox tiebreak.
//! * **Counter-mode randomness.** Latency jitter and compute drift are
//!   drawn as `mix(seed, tag, proc, ctr)` ([`logp_core::rng`]) — a pure
//!   function of the drawing processor's identity and progress, not of
//!   global event interleaving.
//! * **Source rings instead of `Release` events.** The classic engine's
//!   per-message `Release` bookkeeping events would demand global time
//!   order. Each source instead keeps a sorted ring of its in-flight
//!   messages' network-release instants; admission pops expired entries
//!   and compares the ring length against `⌈L/g⌉`. A stalled sender
//!   schedules its own `Wake` at the ring head — the exact instant the
//!   classic engine would have woken it.
//! * **Barrier deltas.** Barrier entry/halt/crash events append
//!   `(t, proc, Δcount, Δalive)` deltas during the pass; the window
//!   driver replays them in `(t, proc)` order to find the first instant
//!   the quorum completes. Completion is *stable* (once every live
//!   processor is in the barrier, later deltas can only remove matched
//!   pairs), so the end-of-cycle completion predicate is replay-order
//!   invariant and the release instant is exact.
//! * **Canonical finalize.** Lifecycle records are appended in lane-pass
//!   order, so at the end of the run they are stably re-sorted by
//!   canonical keys — messages by `(inject, src)`, computes by
//!   `(start, proc)`, timers by `(armed, proc)` — ids renumbered, and
//!   causal references remapped. Activity spans re-sort by processor.
//!   Metrics counters and histograms are commutative sums and need no
//!   treatment.
//!
//! # What the sharded engine relaxes
//!
//! Destination-side admission (the `⌈L/g⌉` per-destination window plus
//! the NI buffer) is zero-lookahead coupling: a sender's admission at `t`
//! would depend on the destination's reception progress at `t`, which is
//! exactly what windowed execution gives up. The sharded engine enforces
//! the *source* window only; `SimStats::max_inflight_per_dst` reads 0 on
//! this path. Runs that need receiver backpressure (hot-spot studies) or
//! gauge sampling (`metrics_grid > 0`) use the classic engine — the
//! dispatch in [`Sim::run`] routes them there automatically.
//!
//! Because the classic engine draws jitter and drift from a sequential
//! generator in global event order, the two engines sample different
//! (equally legitimate) streams; they coincide exactly when
//! `latency_jitter == 0` and `drift_ppk == 0`. Lane counts `>= 2` are
//! bit-identical to each other in all configurations, including under
//! observability and fault plans.

use super::{event_key, key_seq, key_time, EventHeap, EventKind, InboxItem, Lane, Sim, SimError};
use crate::obs::Cause;
use crate::trace::Activity;
use logp_core::Cycles;
use std::cmp::Reverse;
use std::collections::VecDeque;

impl Sim {
    /// Partition the processors into contiguous lanes and build the
    /// sharded engine's state (lane heaps and slabs, canonical counters,
    /// source rings). Arenas are pre-sized so steady-state collectives
    /// never reallocate (pinned by the debug realloc counter).
    pub(super) fn setup_lanes(&mut self) {
        let p = self.model.p as usize;
        let want = (self.config.shards as usize).min(p);
        let per = self.lane_width(want);
        let n = p.div_ceil(per);
        let b = self.ring_span();
        self.lane_of = super::Off::from(vec![0; p]);
        self.lanes = Vec::with_capacity(n);
        for li in 0..n {
            let first = li * per;
            let last = ((li + 1) * per).min(p) - 1;
            for q in first..=last {
                self.lane_of[q] = li as u32;
            }
            let lp = last - first + 1;
            self.lanes.push(Lane {
                buckets: vec![Vec::new(); b as usize],
                bbase: 0,
                bcount: 0,
                far: EventHeap::with_capacity(lp + 16),
                slab: Vec::with_capacity(2 * lp + 16),
                free: Vec::with_capacity(2 * lp + 16),
            });
        }
        self.pctr = super::Off::from(vec![0; p]);
        self.rings = super::Off::from(vec![VecDeque::new(); p]);
        self.v_lane_events = vec![0; n];
    }

    /// The lane width for `want` requested lanes: processors per
    /// contiguous lane, rounded up to a topology-group boundary on
    /// hierarchical machines so intra-group traffic stays lane-local
    /// (results are lane-count invariant either way; alignment only
    /// moves the cut points). Shared by the serial sharded driver and
    /// the parallel executor so their partitions cannot drift apart.
    pub(super) fn lane_width(&self, want: usize) -> usize {
        let p = self.model.p as usize;
        let per = p.div_ceil(want.max(1));
        match self.hierarchy() {
            Some(h) => h.align_lane(per),
            None => per,
        }
    }

    /// The model's conservative lookahead: no send inside `[T, T + W)`
    /// can cause an arrival before `T + W` where `W = o + (L - jitter)`.
    /// On hierarchical machines the bound must hold whichever level a
    /// message uses, so it is the minimum over levels.
    pub(super) fn model_lookahead(&self) -> Cycles {
        match self.hierarchy() {
            Some(h) => h.min_lookahead(self.config.latency_jitter),
            None => {
                let jclamp = self
                    .config
                    .latency_jitter
                    .min(self.model.l.saturating_sub(1));
                self.model.o + (self.model.l - jclamp)
            }
        }
    }

    /// The furthest an arrival can land past its send start: `o + L`
    /// (the *loosest* level's on hierarchical machines — the ring must
    /// cover the slowest message, where the lookahead tracks the
    /// fastest).
    fn max_reach(&self) -> Cycles {
        match self.hierarchy() {
            Some(h) => h.max_reach(),
            None => self.model.o + self.model.l,
        }
    }

    /// Calendar-ring span: a power of two covering one full window plus
    /// the arrival horizon (`o + L` past the window start), so every
    /// plain-send arrival inserts O(1). Capped so absurd `L` cannot
    /// balloon the ring — beyond-horizon events overflow into the `far`
    /// heap and are spilled back when their window comes, so the cap
    /// costs time, never correctness.
    pub(super) fn ring_span(&self) -> Cycles {
        (self.model_lookahead() + self.max_reach() + 2)
            .next_power_of_two()
            .clamp(16, 8192)
    }

    /// Effective window width: the model lookahead, narrowed if the
    /// capped ring cannot cover it (windows narrower than the lookahead
    /// are always legal — lanes just resynchronize more often).
    pub(super) fn window_width(&self) -> Cycles {
        self.model_lookahead().min(self.ring_span() / 2)
    }

    /// The earliest pending instant in lane `li`, if any. Ring entries
    /// always precede `far` entries (pushes beyond the horizon go to
    /// `far`; rebasing spills everything nearer back into the ring), so
    /// the ring scan short-circuits the heap.
    pub(super) fn lane_min(&self, li: usize) -> Option<Cycles> {
        let lane = &self.lanes[li];
        if lane.bcount == 0 {
            return lane.far.peek().map(key_time);
        }
        let b = lane.buckets.len() as u64;
        (lane.bbase..lane.bbase + b).find(|&t| !lane.buckets[(t & (b - 1)) as usize].is_empty())
    }

    /// Move lane `li`'s ring base up to `t0` and spill newly in-horizon
    /// overflow events into the ring. Bucketed leftovers stay valid: they
    /// all lie in `[t0, old_base + span) ⊆ [t0, t0 + span)`.
    pub(super) fn rebase_lane(&mut self, li: usize, t0: Cycles) {
        let lane = &mut self.lanes[li];
        lane.bbase = t0;
        let b = lane.buckets.len() as u64;
        let horizon = t0.saturating_add(b);
        while lane.far.peek().is_some_and(|k| key_time(k) < horizon) {
            let (key, kind) = lane.far.pop().expect("peeked non-empty");
            lane.buckets[(key_time(key) & (b - 1)) as usize].push((key, kind));
            lane.bcount += 1;
        }
    }

    /// Drain one lane's calendar through `[bbase, t_end)`. Returns the
    /// timestamp of the last event processed, or `None` if the lane had
    /// nothing due.
    ///
    /// Each cycle's bucket is taken out, sorted by packed key, and
    /// drained in order — exactly the order the per-lane heap would have
    /// popped. Zero-duration corners (`o = 0` sends, `compute(0)`,
    /// `timer(0)`) can insert *into the cycle being drained*; those land
    /// in the vacated bucket and are merged into the unprocessed tail,
    /// preserving heap semantics (the next event is always the minimum
    /// remaining key).
    pub(super) fn pump_lane<const OBS: bool, const FAULTS: bool>(
        &mut self,
        li: usize,
        t_end: Cycles,
    ) -> Result<Option<Cycles>, SimError> {
        let mut last = None;
        let mut n_ev = 0u64;
        let b = self.lanes[li].buckets.len() as u64;
        let mut t = self.lanes[li].bbase;
        while t < t_end {
            if self.lanes[li].bcount == 0 {
                break;
            }
            let slot = (t & (b - 1)) as usize;
            if self.lanes[li].buckets[slot].is_empty() {
                t += 1;
                continue;
            }
            let mut batch = std::mem::take(&mut self.lanes[li].buckets[slot]);
            self.lanes[li].bcount -= batch.len() as u64;
            batch.sort_unstable_by_key(|e| e.0);
            let mut i = 0;
            loop {
                if !self.lanes[li].buckets[slot].is_empty() {
                    // Rare: same-cycle insertions made while draining.
                    let late = std::mem::take(&mut self.lanes[li].buckets[slot]);
                    self.lanes[li].bcount -= late.len() as u64;
                    batch.extend(late);
                    batch[i..].sort_unstable_by_key(|e| e.0);
                }
                if i >= batch.len() {
                    break;
                }
                let (key, kind) = batch[i];
                i += 1;
                self.process_event::<OBS, FAULTS>(key, kind)?;
                n_ev += 1;
                last = Some(self.now);
            }
            self.v_bucket_max = self.v_bucket_max.max(batch.len() as u64);
            batch.clear();
            // Hand the allocation back so steady-state cycles reuse it.
            let hole = &mut self.lanes[li].buckets[slot];
            if hole.capacity() < batch.capacity() {
                *hole = batch;
            }
            t += 1;
        }
        self.v_lane_events[li] += n_ev;
        Ok(last)
    }

    /// Dispatch one sharded event: the lane-engine counterpart of the
    /// classic drive loop's match, sharing `advance` and every handler
    /// path with it.
    fn process_event<const OBS: bool, const FAULTS: bool>(
        &mut self,
        key: u128,
        kind: EventKind,
    ) -> Result<(), SimError> {
        self.stats.events += 1;
        if self.stats.events > self.config.max_events {
            return Err(SimError::MaxEventsExceeded {
                limit: self.config.max_events,
            });
        }
        // Time is monotone per lane (cycles drain in order); the
        // global clock rewinds when the driver switches lanes, which
        // is exactly the reordering the window bound licenses.
        self.now = key_time(key);
        match kind {
            EventKind::Arrive(slot) => {
                let msg = self.unstash_msg_sharded(slot);
                let dst = msg.dst;
                if FAULTS && self.is_crashed(dst) {
                    // Dead interface: the message is lost. (No NI
                    // occupancy to release — the sharded engine does
                    // not track destination admission.)
                    self.stats.msgs_dropped += 1;
                    return Ok(());
                }
                self.stats.total_msgs += 1;
                // The source-canonical event tiebreak doubles as the
                // inbox tiebreak, so same-cycle arrival order at a
                // destination is lane-count-invariant.
                let ikey = InboxItem::key(self.now, key_seq(key));
                if OBS {
                    self.note_arrival(dst, slot, ikey);
                }
                self.procs[dst as usize]
                    .inbox
                    .push(Reverse(InboxItem { key: ikey, msg }));
                self.advance::<OBS, FAULTS, true>(dst);
            }
            EventKind::SendDone(p) => {
                self.procs[p as usize].engaged = false;
                self.advance::<OBS, FAULTS, true>(p);
            }
            EventKind::ComputeDone(p, tag) => {
                if FAULTS && self.is_crashed(p) {
                    return Ok(());
                }
                self.procs[p as usize].engaged = false;
                let cause = if OBS {
                    match self.obs.as_deref() {
                        Some(o) if o.msg_log => Cause::Compute(o.cur_compute[p as usize]),
                        _ => Cause::Start,
                    }
                } else {
                    Cause::Start
                };
                self.run_handler::<OBS, _>(p, cause, |prog, ctx| prog.on_compute_done(tag, ctx));
                self.advance::<OBS, FAULTS, true>(p);
            }
            EventKind::RecvDone(p) => {
                if FAULTS && self.is_crashed(p) {
                    return Ok(());
                }
                let st = &mut self.procs[p as usize];
                st.engaged = false;
                st.stats.msgs_recvd += 1;
                let msg = st.receiving.take().expect("a reception was in progress");
                let cause = if OBS {
                    match self.obs.as_deref() {
                        Some(o) => {
                            let obs_val = o.recv_obs[p as usize];
                            let log = o.msg_log;
                            self.record_delivery(obs_val);
                            if log {
                                Cause::Msg(obs_val)
                            } else {
                                Cause::Start
                            }
                        }
                        None => Cause::Start,
                    }
                } else {
                    Cause::Start
                };
                self.run_handler::<OBS, _>(p, cause, |prog, ctx| prog.on_message(&msg, ctx));
                self.advance::<OBS, FAULTS, true>(p);
            }
            EventKind::TimerFire(p, tag) => {
                if self.procs[p as usize].halted {
                    return Ok(());
                }
                let cause = if OBS {
                    self.timer_cause(key)
                } else {
                    Cause::Start
                };
                self.run_handler::<OBS, _>(p, cause, |prog, ctx| prog.on_timer(tag, ctx));
                self.advance::<OBS, FAULTS, true>(p);
            }
            EventKind::Crash(p) => {
                debug_assert!(FAULTS, "crash events only exist under a fault plan");
                self.apply_crash::<OBS, true>(p);
            }
            EventKind::Wake(p) => {
                // Self-scheduled at the source ring head: the slot is
                // free now, so the retried send re-polls the network
                // first (the classic `Release` arm's wake semantics).
                self.procs[p as usize].waiting_on_src = false;
                self.advance::<OBS, FAULTS, true>(p);
            }
            EventKind::Release { .. } | EventKind::BarrierRelease => {
                unreachable!("classic-only event on the sharded path")
            }
        }
        Ok(())
    }

    /// Replay the logged barrier deltas in canonical `(t, proc)` order to
    /// find the instant the quorum completed, and return the release
    /// instant `t_done + barrier_cost`. Also repairs `barrier_last` —
    /// lane passes update it in pass order, but the record belongs to the
    /// canonically last entrant.
    pub(super) fn barrier_release_time(&mut self, alive_base: i64) -> Cycles {
        self.bdeltas.sort_unstable_by_key(|d| (d.t, d.proc));
        let mut count = 0i64;
        let mut alive = alive_base;
        let mut t_done = None;
        let mut last_enter: Option<usize> = None;
        for (i, d) in self.bdeltas.iter().enumerate() {
            count += d.dcount as i64;
            alive += d.dalive as i64;
            if d.dcount > 0 {
                last_enter = Some(i);
            }
            if t_done.is_none() && alive > 0 && count == alive {
                t_done = Some(d.t);
            }
        }
        let t_done = t_done.expect("live quorum implies the replay completes");
        if let Some(i) = last_enter {
            let d = &self.bdeltas[i];
            let (proc, t) = (d.proc, d.t);
            let (cause, submit) = d.meta.expect("barrier entries carry their metadata");
            if let Some(obs) = self.obs.as_deref_mut() {
                if obs.msg_log {
                    obs.barrier_last = (proc, submit, t, cause);
                }
            }
        }
        t_done + self.config.barrier_cost
    }

    /// Release the barrier at `t_rel`: the classic `BarrierRelease` arm,
    /// re-run against the canonical release instant. Split into three
    /// per-processor phases so the parallel executor (`engine::plane`)
    /// can run each phase lane-by-lane in processor order — reproducing
    /// this exact serial sequence — with the lifecycle record written
    /// once by the coordinator between phases.
    fn apply_barrier_release<const OBS: bool, const FAULTS: bool>(&mut self, t_rel: Cycles) {
        self.now = t_rel;
        let bcause = if OBS {
            self.record_barrier_release()
        } else {
            Cause::Start
        };
        self.barrier_release_collect(t_rel);
        self.barrier_release_handlers::<OBS>(bcause);
        self.barrier_release_advance::<OBS, FAULTS>();
    }

    /// Phase 1: collect this Sim's released processors into
    /// `released_scratch` (kept there across the three phases) and close
    /// their barrier state and spans.
    pub(super) fn barrier_release_collect(&mut self, t_rel: Cycles) {
        self.now = t_rel;
        self.barrier_count = 0;
        let mut released = std::mem::take(&mut self.released_scratch);
        released.extend(
            self.proc_range()
                .map(|p| p as logp_core::ProcId)
                .filter(|&p| self.procs[p as usize].in_barrier),
        );
        for &p in &released {
            let st = &mut self.procs[p as usize];
            st.in_barrier = false;
            st.engaged = false;
            st.busy_until = t_rel;
            let entered = st.barrier_entered_at;
            st.stats.barrier_wait += t_rel - entered;
            self.span(p, entered, t_rel, Activity::Barrier);
        }
        self.released_scratch = released;
    }

    /// Phase 2: run the released processors' `on_barrier_release`
    /// handlers (no sink emissions — handler metadata is aggregate-only).
    pub(super) fn barrier_release_handlers<const OBS: bool>(&mut self, bcause: Cause) {
        let released = std::mem::take(&mut self.released_scratch);
        for &p in &released {
            self.run_handler::<OBS, _>(p, bcause, |prog, ctx| prog.on_barrier_release(ctx));
        }
        self.released_scratch = released;
    }

    /// Phase 3: advance the released processors, consuming the scratch.
    pub(super) fn barrier_release_advance<const OBS: bool, const FAULTS: bool>(&mut self) {
        let mut released = std::mem::take(&mut self.released_scratch);
        for &p in &released {
            self.advance::<OBS, FAULTS, true>(p);
        }
        released.clear();
        self.released_scratch = released;
    }

    /// Re-sort the observability log and activity trace into canonical
    /// order and rewrite causal references ([`crate::obs::ObsLog::canonicalize`]
    /// — the same renumbering a replayed streaming trace gets). Lane
    /// passes append records in pass order; the canonical order is the
    /// per-record primary timestamp with the owning processor as
    /// tiebreak (both lane-count-invariant).
    pub(super) fn canonicalize_results(&mut self) {
        if self.config.record_trace {
            self.trace.spans.sort_by_key(|s| s.proc);
        }
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        if !obs.msg_log {
            return;
        }
        obs.log.canonicalize();
    }

    /// The windowed lane driver. Mirrors [`Sim::drive`]'s prologue and
    /// event semantics, replacing the single globally ordered heap with
    /// per-lane heaps drained window-by-window.
    #[inline(never)]
    pub(crate) fn drive_sharded<const OBS: bool, const FAULTS: bool>(
        &mut self,
    ) -> Result<(), SimError> {
        self.setup_lanes();
        let w = self.window_width();
        // `alive` before any delta below is the replay baseline.
        let mut alive_base = self.alive as i64;
        if FAULTS {
            // One crash per processor (the earliest wins — a processor
            // cannot die twice), keyed canonically below every
            // counter-derived key of its cycle.
            let mut crashes = self
                .faults
                .as_deref()
                .expect("FAULTS implies a fault plan")
                .plan
                .crashes
                .clone();
            crashes.sort_unstable_by_key(|&(p, t)| (p, t));
            crashes.dedup_by_key(|&mut (p, _)| p);
            for (p, t) in crashes {
                if t == 0 {
                    self.apply_crash::<OBS, true>(p);
                } else {
                    self.push_lane(p, event_key(t, 0, p as u64), EventKind::Crash(p));
                }
            }
        }
        for p in 0..self.model.p {
            if FAULTS && self.procs[p as usize].halted {
                continue;
            }
            self.run_handler::<OBS, _>(p, Cause::Start, |prog, ctx| prog.on_start(ctx));
        }
        for p in 0..self.model.p {
            self.advance::<OBS, FAULTS, true>(p);
        }
        let mut pending_release: Option<Cycles> = None;
        let mut completion: Cycles = 0;
        let mut prev_end: Option<Cycles> = None;
        loop {
            // The quorum may already be complete before any window runs:
            // if every processor enters a barrier straight from
            // `on_start` (or from a release handler), no event is
            // scheduled anywhere and the release instant is the only
            // pending instant.
            if pending_release.is_none() && self.alive > 0 && self.barrier_count == self.alive {
                pending_release = Some(self.barrier_release_time(alive_base));
            }
            // Next window start: the earliest pending instant anywhere.
            // Jumping straight to it is the quiescence fast-forward — a
            // machine with nothing due until cycle 10^9 costs one probe,
            // not 10^9 window steps.
            let mut t0 = pending_release;
            for li in 0..self.lanes.len() {
                if let Some(t) = self.lane_min(li) {
                    if t0.is_none_or(|b| t < b) {
                        t0 = Some(t);
                    }
                }
            }
            let Some(t0) = t0 else {
                break;
            };
            self.v_windows += 1;
            if prev_end.is_some_and(|e| t0 > e) {
                self.v_fast_forwards += 1;
            }
            for li in 0..self.lanes.len() {
                self.rebase_lane(li, t0);
            }
            let t_end = t0.saturating_add(w);
            prev_end = Some(t_end);
            // Drain the window to a fixed point: a barrier release inside
            // the window re-arms processors across every lane, so lanes
            // are re-pumped (same bound) until nothing is due before
            // `t_end`.
            loop {
                let mut progressed = false;
                for li in 0..self.lanes.len() {
                    if let Some(t) = self.pump_lane::<OBS, FAULTS>(li, t_end)? {
                        completion = completion.max(t);
                        progressed = true;
                    }
                }
                if pending_release.is_none() && self.alive > 0 && self.barrier_count == self.alive {
                    pending_release = Some(self.barrier_release_time(alive_base));
                }
                if let Some(t_rel) = pending_release {
                    if t_rel < t_end {
                        let consumed = self.bdeltas.len();
                        self.apply_barrier_release::<OBS, FAULTS>(t_rel);
                        completion = completion.max(t_rel);
                        // Deltas before the release are consumed; the
                        // next quorum replays from the post-release
                        // state. Entries pushed by the release handlers
                        // themselves (a processor can re-enter the next
                        // round, or halt, inside `on_barrier_release`)
                        // belong to the next round and are kept, with
                        // the replay baseline backed out of their
                        // alive-deltas.
                        self.bdeltas.drain(..consumed);
                        alive_base = self.alive as i64
                            - self.bdeltas.iter().map(|d| d.dalive as i64).sum::<i64>();
                        pending_release = None;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        // The classic engine's clock ends at the last event popped —
        // which includes the per-message `Release` bookkeeping events, so
        // its completion covers the network fully draining (a dropped
        // message's release, or `g > L` windows, can trail the last
        // delivery). The sharded equivalent is the latest release
        // instant still parked in any source ring: rings evict an entry
        // only while processing an event at or after it, so the maximum
        // below matches the classic engine's final `Release` exactly.
        for ring in self.rings.iter() {
            if let Some(&r) = ring.back() {
                completion = completion.max(r);
            }
        }
        self.now = completion;
        self.canonicalize_results();
        Ok(())
    }
}
