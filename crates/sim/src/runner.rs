//! Parallel sweep runner: fan independent simulations across threads.
//!
//! Parameter-space studies (§7 of the paper) run the same program over
//! hundreds of machine configurations; each run is an independent
//! single-threaded discrete-event simulation, so the sweep itself is
//! embarrassingly parallel. This module provides the batch/sweep entry
//! points the `logp-bench` binaries and `logp-algos::measure` use:
//!
//! * [`RunSpec`] — one simulation: machine, config, and a program
//!   factory (`Fn(ProcId) -> Box<dyn Process>`, shared across threads).
//! * [`run_batch`] — execute a slice of specs on a thread pool and
//!   return results in spec order.
//! * [`run_sweep`] — build one spec per machine in a
//!   [`logp_core::sweep::Grid`] and batch-run them.
//! * [`sweep_map`] — generic "parallel map in index order" for sweep
//!   drivers whose per-point work is more than one simulation.
//!
//! # Determinism
//!
//! Results are bit-identical regardless of thread count, for two
//! reasons. First, each simulation is self-contained: its RNG stream is
//! derived from its own config seed and nothing is shared between runs.
//! Second, run `i` of a batch executes with `derive_seed(base_seed, i)`
//! — a SplitMix64 hash of the run's *index* folded into the spec's base
//! seed — so a run's draws depend only on its position in the batch,
//! never on which worker picked it up or in what order runs finished.
//! `1` thread, `8` threads, and repeated invocations all produce the
//! same bytes (`runner_determinism.rs` pins this).

use logp_core::sweep::Grid;
use logp_core::{LogP, ProcId};
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

use crate::perfetto::write_artifacts;
use crate::process::Process;
use crate::{Sim, SimConfig, SimError, SimResult};
use logp_core::rng::splitmix64;
use std::path::PathBuf;

/// Thread-count policy for a batch of runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Use all available parallelism.
    #[default]
    Auto,
    /// Pin to exactly `n` workers (`Fixed(1)` runs inline, serially).
    Fixed(usize),
}

impl Threads {
    /// Read the policy from the `LOGP_THREADS` environment variable
    /// (`0`, unset, or unparsable mean [`Threads::Auto`]).
    pub fn from_env() -> Self {
        match std::env::var("LOGP_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Threads::Fixed(n),
                _ => Threads::Auto,
            },
            Err(_) => Threads::Auto,
        }
    }

    /// The worker count this policy resolves to.
    pub fn count(&self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Threads::Fixed(n) => (*n).max(1),
        }
    }

    fn pool(&self) -> ThreadPool {
        ThreadPoolBuilder::new()
            .num_threads(self.count())
            .build()
            .expect("thread pool construction cannot fail")
    }

    /// Run `f` with this policy governing rayon parallelism inside it —
    /// the hook for sweeps that call parallel code (e.g.
    /// `logp_core::sweep::sweep_par`) directly rather than through
    /// [`run_batch`]/[`sweep_map`].
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pool().install(f)
    }
}

/// Program factory shared across worker threads: called once per
/// processor to populate a simulation.
pub type ProgramFactory = Box<dyn Fn(ProcId) -> Box<dyn Process> + Send + Sync>;

/// One independent simulation: machine, fidelity config, and programs.
pub struct RunSpec {
    pub model: LogP,
    pub config: SimConfig,
    factory: ProgramFactory,
    /// Write a Perfetto `trace_event` JSON of the run here (enables the
    /// lifecycle log for this spec).
    pub trace_out: Option<PathBuf>,
    /// Write the run's metrics registry as JSON here (enables metrics
    /// for this spec).
    pub metrics_out: Option<PathBuf>,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("model", &self.model)
            .field("config", &self.config)
            .field("trace_out", &self.trace_out)
            .field("metrics_out", &self.metrics_out)
            .finish_non_exhaustive()
    }
}

impl RunSpec {
    /// Spec running `factory(p)` on each processor of `model`.
    pub fn new(
        model: LogP,
        config: SimConfig,
        factory: impl Fn(ProcId) -> Box<dyn Process> + Send + Sync + 'static,
    ) -> Self {
        RunSpec {
            model,
            config,
            factory: Box::new(factory),
            trace_out: None,
            metrics_out: None,
        }
    }

    /// Write this spec's Perfetto trace to `path` after the run.
    pub fn with_trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Write this spec's metrics JSON to `path` after the run.
    pub fn with_metrics_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Build and run this spec's simulation with an explicit seed.
    fn run_with_seed(&self, seed: u64) -> Result<SimResult, SimError> {
        let mut config = SimConfig {
            seed,
            ..self.config.clone()
        };
        // Artifact requests imply the observability they need.
        if self.trace_out.is_some() {
            config = config.with_msg_log(true);
        }
        if self.metrics_out.is_some() {
            config = config.with_metrics(true);
        }
        let mut sim = Sim::new(self.model, config);
        sim.set_all(|p| (self.factory)(p));
        let result = sim.run();
        if let Ok(res) = &result {
            if let Err(e) =
                write_artifacts(res, self.trace_out.as_deref(), self.metrics_out.as_deref())
            {
                eprintln!("warning: failed to write run artifacts: {e}");
            }
        }
        result
    }

    /// Build and run this spec's simulation with its own config seed,
    /// serially on the calling thread.
    pub fn run(&self) -> Result<SimResult, SimError> {
        self.run_with_seed(self.config.seed)
    }
}

/// Seed for run `index` of a batch whose specs carry `base` seeds.
///
/// `base ^ splitmix64(index)`: a function of the run's position only, so
/// a batch's RNG streams are decorrelated run-to-run yet independent of
/// worker scheduling. Exposed so drivers that run specs by hand (for
/// example, one run at a time under a debugger) can reproduce exactly
/// what [`run_batch`] would have executed.
#[inline]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    base ^ splitmix64(index)
}

/// Run every spec, fanning across `threads` workers; results come back
/// in spec order. Run `i` uses `derive_seed(spec[i].config.seed, i)`.
pub fn run_batch(specs: &[RunSpec], threads: Threads) -> Vec<Result<SimResult, SimError>> {
    let indexed: Vec<usize> = (0..specs.len()).collect();
    threads.pool().install(|| {
        indexed
            .par_iter()
            .map(|&i| specs[i].run_with_seed(derive_seed(specs[i].config.seed, i as u64)))
            .collect()
    })
}

/// Run one simulation per machine in `grid` (in the grid's row-major
/// enumeration order), all sharing `config` and `factory`. Returns
/// `(machine, result)` pairs in that order.
pub fn run_sweep(
    grid: &Grid,
    config: &SimConfig,
    threads: Threads,
    factory: impl Fn(ProcId) -> Box<dyn Process> + Send + Sync + Clone + 'static,
) -> Vec<(LogP, Result<SimResult, SimError>)> {
    let machines = grid.machines();
    let specs: Vec<RunSpec> = machines
        .iter()
        .map(|&m| RunSpec::new(m, config.clone(), factory.clone()))
        .collect();
    machines
        .into_iter()
        .zip(run_batch(&specs, threads))
        .collect()
}

/// Parallel map over arbitrary sweep items, results in index order.
///
/// For sweep drivers whose per-point work is not a single `Sim::run` —
/// e.g. measuring several algorithms per machine, or binary-searching a
/// saturation point — this applies `f` to every item on a pool of
/// `threads` workers. `f` must be deterministic in its argument for the
/// thread-count-independence guarantee to carry over.
pub fn sweep_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    threads.pool().install(|| items.par_iter().map(f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Data;
    use crate::process::Ctx;

    struct Ping;
    impl Process for Ping {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.me() == 0 {
                ctx.send(1, 0, Data::U64(42));
            }
        }
    }

    #[test]
    fn threads_resolve_to_positive_counts() {
        assert!(Threads::Auto.count() >= 1);
        assert_eq!(Threads::Fixed(3).count(), 3);
        assert_eq!(Threads::Fixed(0).count(), 1);
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        // Stable: same inputs, same seed, forever.
        assert_eq!(derive_seed(7, 0), s0);
    }

    #[test]
    fn run_batch_matches_serial_execution() {
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let specs: Vec<RunSpec> = (0..8)
            .map(|_| RunSpec::new(model, SimConfig::default(), |_| Box::new(Ping)))
            .collect();
        let results = run_batch(&specs, Threads::Fixed(4));
        assert_eq!(results.len(), 8);
        for r in &results {
            let r = r.as_ref().expect("ping completes");
            assert_eq!(r.stats.completion, 10);
        }
    }

    #[test]
    fn run_spec_writes_requested_artifacts() {
        let dir = std::env::temp_dir().join("logp_runner_artifacts");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("ping.trace.json");
        let metrics = dir.join("ping.metrics.json");
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let spec = RunSpec::new(model, SimConfig::default(), |_| Box::new(Ping))
            .with_trace_out(&trace)
            .with_metrics_out(&metrics);
        let res = spec.run().unwrap();
        // Artifact flags force the observability they need without the
        // caller touching SimConfig.
        assert!(!res.obs.msgs.is_empty());
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("traceEvents"));
        assert!(std::fs::read_to_string(&metrics)
            .unwrap()
            .contains("messages_delivered"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_sweep_covers_the_grid_in_order() {
        use logp_core::sweep::{Axis, Grid};
        let grid = Grid {
            l: Axis::list([2, 4, 8]),
            o: Axis::fixed(1),
            g: Axis::fixed(2),
            p: Axis::fixed(2),
        };
        let out = run_sweep(&grid, &SimConfig::default(), Threads::Fixed(2), |_| {
            Box::new(Ping)
        });
        assert_eq!(out.len(), 3);
        for (m, r) in &out {
            // Completion of a single ping is 2o + L.
            assert_eq!(r.as_ref().unwrap().stats.completion, 2 * m.o + m.l);
        }
    }

    #[test]
    fn sweep_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = sweep_map(Threads::Fixed(8), &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }
}
