//! Messages exchanged between simulated processors.
//!
//! The basic LogP model assumes small messages — "a word (or small number
//! of words)" — so payloads are compact values. Algorithms needing bulk
//! transfers send message trains (see `logp-algos::bulk`), matching the
//! model's treatment of long messages as repeated small ones unless the
//! LogGP extension is in play.

use logp_core::ProcId;
use std::sync::Arc;

/// Small-message payload. One machine word (or a small number of words).
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    /// No payload beyond the tag (pure control message).
    Empty,
    /// One unsigned word.
    U64(u64),
    /// One floating-point word.
    F64(f64),
    /// Two words (e.g. index + value).
    Pair(u64, u64),
    /// An index plus a float (e.g. element id + partial sum).
    IdxF64(u64, f64),
    /// An indexed complex value (e.g. one FFT element in a remap).
    Cplx { idx: u64, re: f64, im: f64 },
    /// A shared block of words. The *model* still treats the message as
    /// small; this exists so tests can ship structured payloads without
    /// serializing. Use message trains for anything the model should
    /// charge for.
    Block(Arc<Vec<u64>>),
    /// A sequenced payload: an inner payload tagged with a per-sender
    /// sequence number. This is the wire format of the reliable-delivery
    /// layer (`logp_sim::reliable`); the fault layer keys its decisions on
    /// `seq` so every retransmission of the same logical message draws the
    /// same fault lottery ticket per attempt.
    Seq {
        /// Logical message identity on this channel.
        seq: u64,
        /// The wrapped application payload.
        inner: Box<Data>,
    },
}

impl Data {
    /// A coarse payload size in words, used only for statistics.
    pub fn words(&self) -> u64 {
        match self {
            Data::Empty => 0,
            Data::U64(_) | Data::F64(_) => 1,
            Data::Pair(..) | Data::IdxF64(..) => 2,
            Data::Cplx { .. } => 3,
            Data::Block(b) => b.len() as u64,
            // One header word for the sequence number.
            Data::Seq { inner, .. } => 1 + inner.words(),
        }
    }

    /// The sequence number of a [`Data::Seq`] payload, `None` otherwise.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Data::Seq { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    /// Unwrap a [`Data::Seq`] payload into `(seq, inner)`.
    pub fn as_seq(&self) -> (u64, &Data) {
        match self {
            Data::Seq { seq, inner } => (*seq, inner),
            other => panic!("expected Data::Seq, got {other:?}"),
        }
    }

    /// Extract a `u64`, panicking with context otherwise (simulation
    /// programs are internally typed; a mismatch is a program bug).
    pub fn as_u64(&self) -> u64 {
        match self {
            Data::U64(v) => *v,
            other => panic!("expected Data::U64, got {other:?}"),
        }
    }

    /// Extract an `f64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            Data::F64(v) => *v,
            other => panic!("expected Data::F64, got {other:?}"),
        }
    }

    /// Extract a pair.
    pub fn as_pair(&self) -> (u64, u64) {
        match self {
            Data::Pair(a, b) => (*a, *b),
            other => panic!("expected Data::Pair, got {other:?}"),
        }
    }

    /// Extract an index/float pair.
    pub fn as_idx_f64(&self) -> (u64, f64) {
        match self {
            Data::IdxF64(i, v) => (*i, *v),
            other => panic!("expected Data::IdxF64, got {other:?}"),
        }
    }

    /// Extract an indexed complex value.
    pub fn as_cplx(&self) -> (u64, f64, f64) {
        match self {
            Data::Cplx { idx, re, im } => (*idx, *re, *im),
            other => panic!("expected Data::Cplx, got {other:?}"),
        }
    }
}

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender.
    pub src: ProcId,
    /// Destination.
    pub dst: ProcId,
    /// Application-level tag for dispatch in `on_message`.
    pub tag: u32,
    /// Payload.
    pub data: Data,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(Data::Empty.words(), 0);
        assert_eq!(Data::U64(3).words(), 1);
        assert_eq!(Data::Pair(1, 2).words(), 2);
        assert_eq!(Data::Block(Arc::new(vec![1, 2, 3])).words(), 3);
    }

    #[test]
    fn typed_extraction() {
        assert_eq!(Data::U64(7).as_u64(), 7);
        assert_eq!(Data::F64(1.5).as_f64(), 1.5);
        assert_eq!(Data::Pair(1, 2).as_pair(), (1, 2));
        assert_eq!(Data::IdxF64(4, 0.5).as_idx_f64(), (4, 0.5));
    }

    #[test]
    #[should_panic(expected = "expected Data::U64")]
    fn extraction_mismatch_panics() {
        Data::F64(0.0).as_u64();
    }
}
