//! # logp-sim — a deterministic LogP machine simulator
//!
//! The paper validated the LogP model on a 128-processor CM-5; this crate
//! substitutes a discrete-event simulator that implements the model's
//! execution semantics *exactly* (see `DESIGN.md` for the substitution
//! argument): send/receive overhead `o`, injection/reception gap `g`,
//! latency bounded by `L` (optionally jittered, so message order is not
//! guaranteed), and the ⌈L/g⌉ per-endpoint capacity constraint with
//! sender stalling.
//!
//! Programs implement [`process::Process`] — an event-driven actor with
//! `on_start` / `on_message` / `on_compute_done` / `on_barrier_release`
//! handlers that issue `send` / `compute` / `barrier` commands through
//! [`process::Ctx`].
//!
//! Beyond the flat model: [`Sim::new_hier`] runs the same programs on a
//! multi-level [`logp_core::hier::Hierarchy`] — every message pays the
//! (L, o, g) of its endpoints' lowest common level, with per-level
//! capacity windows (`docs/HIERARCHY.md`). [`SimConfig::with_shards`]
//! switches to the sharded engine (per-lane calendar queues under
//! L-lookahead, for million-rank runs) and `with_workers` executes its
//! lanes on a thread pool; results are bit-identical across engines,
//! lane counts and worker counts. The [`obs`]/[`critpath`]/[`metrics`]
//! modules explain *why* a run took as long as it did, [`faults`] and
//! [`reliable`] take away and rebuild the model's reliable-delivery
//! assumption, and [`runner`] fans sweeps across threads
//! deterministically.
//!
//! ```
//! use logp_core::LogP;
//! use logp_sim::{Sim, SimConfig};
//! use logp_sim::process::{Ctx, Process};
//! use logp_sim::message::Data;
//!
//! // A two-processor ping: P0 sends one word to P1.
//! struct Ping;
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         if ctx.me() == 0 {
//!             ctx.send(1, 0, Data::U64(42));
//!         }
//!     }
//! }
//!
//! let model = LogP::new(6, 2, 4, 2).unwrap();
//! let mut sim = Sim::new(model, SimConfig::default());
//! sim.set_all(|_| Box::new(Ping));
//! let result = sim.run().unwrap();
//! // The datum is usable at 2o + L = 10.
//! assert_eq!(result.stats.completion, 10);
//! ```

pub mod config;
pub mod critpath;
pub mod engine;
pub mod faults;
pub mod message;
pub mod metrics;
pub mod obs;
pub mod perfetto;
pub mod process;
pub mod reliable;
pub mod runner;
pub mod trace;

pub use config::SimConfig;
pub use critpath::{critical_path, Components, CritPath, ObsAggregate, PathStep, StepKind};
pub use engine::{Sim, SimError, SimResult};
pub use faults::{FaultDecision, FaultPlan};
pub use message::{Data, Message};
pub use metrics::{EngineVitals, MetricsRegistry};
pub use obs::{
    replay_jsonl, BarrierRecord, Cause, ComputeRecord, JsonlSink, MsgId, MsgRecord, NullSink,
    ObsLog, ObsSampling, ObsSink, SinkSpec, TimerRecord,
};
pub use perfetto::{perfetto_trace_json, PerfettoSink};
pub use process::{Ctx, Process};
pub use reliable::{Endpoint, EndpointStats, RetryConfig};
pub use runner::{derive_seed, run_batch, run_sweep, sweep_map, RunSpec, Threads};
pub use trace::{Activity, ProcStats, SimStats, Span, Trace};

/// A shared output cell for extracting results from simulated programs.
///
/// Programs are owned by the engine; algorithms that need results out of
/// them share one of these between the host and the process.
#[derive(Debug, Default)]
pub struct SharedCell<T>(std::sync::Arc<std::sync::Mutex<T>>);

impl<T> Clone for SharedCell<T> {
    fn clone(&self) -> Self {
        SharedCell(self.0.clone())
    }
}

impl<T: Default> SharedCell<T> {
    /// Fresh cell holding `T::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T> SharedCell<T> {
    /// Cell holding `value`.
    pub fn of(value: T) -> Self {
        SharedCell(std::sync::Arc::new(std::sync::Mutex::new(value)))
    }

    /// Mutate the contents.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self
            .0
            .lock()
            .expect("sim is single-threaded; lock cannot be poisoned"))
    }

    /// Copy the contents out.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.0.lock().expect("sim is single-threaded").clone()
    }

    /// Replace the contents, returning the old value.
    pub fn replace(&self, value: T) -> T {
        std::mem::replace(&mut self.0.lock().expect("sim is single-threaded"), value)
    }
}

#[cfg(test)]
mod cell_tests {
    use super::SharedCell;

    #[test]
    fn shared_cell_round_trip() {
        let c: SharedCell<Vec<u32>> = SharedCell::new();
        let c2 = c.clone();
        c2.with(|v| v.push(7));
        assert_eq!(c.get(), vec![7]);
        assert_eq!(c.replace(vec![1]), vec![7]);
        assert_eq!(c.get(), vec![1]);
    }
}
