//! Activity traces and per-processor accounting.
//!
//! The right-hand panel of the paper's Figure 3 is a per-processor
//! activity timeline (send overheads, message flights, receive overheads);
//! [`Trace::gantt`] renders the simulator's equivalent as ASCII.

use logp_core::{Cycles, ProcId};

/// What a processor was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Send overhead (`o`).
    SendOverhead,
    /// Receive overhead (`o`).
    RecvOverhead,
    /// Explicit local computation.
    Compute,
    /// Stalled on the network capacity constraint.
    Stall,
    /// Waiting inside the barrier.
    Barrier,
}

impl Activity {
    /// One-character glyph for Gantt rendering.
    pub fn glyph(&self) -> char {
        match self {
            Activity::SendOverhead => 's',
            Activity::RecvOverhead => 'r',
            Activity::Compute => '#',
            Activity::Stall => 'x',
            Activity::Barrier => 'b',
        }
    }

    /// Rendering priority when several activities land in one Gantt cell
    /// (`scale > 1`): stall > overhead > compute > barrier.
    fn priority(&self) -> u8 {
        match self {
            Activity::Stall => 4,
            Activity::SendOverhead | Activity::RecvOverhead => 3,
            Activity::Compute => 2,
            Activity::Barrier => 1,
        }
    }
}

/// A half-open span `[start, end)` of processor activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub proc: ProcId,
    pub start: Cycles,
    pub end: Cycles,
    pub activity: Activity,
}

/// A recorded trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    pub(crate) fn push(&mut self, span: Span) {
        if span.end > span.start {
            self.spans.push(span);
        }
    }

    /// Spans of a single processor, in start order.
    pub fn for_proc(&self, p: ProcId) -> Vec<Span> {
        let mut v: Vec<Span> = self.spans.iter().copied().filter(|s| s.proc == p).collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Render an ASCII Gantt chart: one row per processor, one column per
    /// `scale` cycles ('.' = idle).
    ///
    /// When `scale > 1`, several spans can land in one cell. The cell
    /// shows the highest-priority activity present (stall > overhead >
    /// compute > barrier); two *different* activities of equal priority
    /// (a send and a receive overhead) render as the mixed-cell glyph
    /// `*`. The result is independent of span insertion order. A legend
    /// line is appended after the rows.
    pub fn gantt(&self, procs: u32, horizon: Cycles, scale: Cycles) -> String {
        let scale = scale.max(1);
        let cols = (horizon / scale + 1) as usize;
        // Per cell: (priority, glyph); priority 0 = idle.
        let mut rows = vec![vec![(0u8, '.'); cols]; procs as usize];
        for s in &self.spans {
            let row = &mut rows[s.proc as usize];
            let from = (s.start / scale) as usize;
            let to = (s.end.div_ceil(scale) as usize).min(cols);
            let (prio, glyph) = (s.activity.priority(), s.activity.glyph());
            for cell in row.iter_mut().take(to).skip(from) {
                if prio > cell.0 {
                    *cell = (prio, glyph);
                } else if prio == cell.0 && glyph != cell.1 {
                    cell.1 = '*';
                }
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!("P{i:<3}|"));
            out.extend(row.iter().map(|&(_, g)| g));
            out.push('\n');
        }
        out.push_str("legend: s=send-o r=recv-o #=compute x=stall b=barrier *=mixed .=idle\n");
        out
    }
}

/// Per-processor cycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles spent in send overhead.
    pub send_overhead: Cycles,
    /// Cycles spent in receive overhead.
    pub recv_overhead: Cycles,
    /// Cycles spent in explicit computation.
    pub compute: Cycles,
    /// Cycles stalled on the capacity constraint.
    pub stall: Cycles,
    /// Cycles waiting at barriers.
    pub barrier_wait: Cycles,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recvd: u64,
}

impl ProcStats {
    /// Total accounted busy cycles.
    pub fn busy(&self) -> Cycles {
        self.send_overhead + self.recv_overhead + self.compute + self.stall
    }
}

/// Whole-run results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Time of the last event (completion time of the run).
    pub completion: Cycles,
    /// Per-processor accounting.
    pub procs: Vec<ProcStats>,
    /// Total messages delivered.
    pub total_msgs: u64,
    /// Largest number of simultaneously in-transit messages to a single
    /// destination observed (must never exceed capacity when enforced).
    pub max_inflight_per_dst: u64,
    /// Largest in-transit count from a single source observed.
    pub max_inflight_per_src: u64,
    /// Number of simulated events processed.
    pub events: u64,
    /// Messages discarded by the fault layer: injected but dropped in
    /// flight, or arriving at a crashed processor's interface. Always 0
    /// without a [`crate::FaultPlan`].
    pub msgs_dropped: u64,
    /// Extra message copies injected by the fault layer.
    pub msgs_duplicated: u64,
    /// Messages whose flight the fault layer stretched.
    pub msgs_delayed: u64,
    /// Processors crash-stopped by the fault plan during this run.
    pub procs_crashed: u32,
}

impl SimStats {
    /// Aggregate busy fraction over all processors up to completion.
    pub fn utilization(&self) -> f64 {
        if self.completion == 0 || self.procs.is_empty() {
            return 0.0;
        }
        let busy: Cycles = self.procs.iter().map(|p| p.busy()).sum();
        busy as f64 / (self.completion as f64 * self.procs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gantt_renders_spans() {
        let mut t = Trace::default();
        t.push(Span {
            proc: 0,
            start: 0,
            end: 2,
            activity: Activity::SendOverhead,
        });
        t.push(Span {
            proc: 1,
            start: 8,
            end: 10,
            activity: Activity::RecvOverhead,
        });
        let g = t.gantt(2, 9, 1);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("P0  |ss"));
        assert!(lines[1].ends_with("rr"), "got {:?}", lines[1]);
    }

    #[test]
    fn gantt_emits_legend() {
        let t = Trace::default();
        let g = t.gantt(1, 4, 1);
        let last = g.lines().last().unwrap();
        assert!(last.starts_with("legend:"), "got {last:?}");
        for needle in [
            "s=send-o",
            "r=recv-o",
            "#=compute",
            "x=stall",
            "b=barrier",
            "*=mixed",
        ] {
            assert!(last.contains(needle), "legend missing {needle}");
        }
    }

    #[test]
    fn gantt_cell_collisions_resolve_by_priority() {
        // With scale 4, cycles [0,4) collapse into one cell. A stall and
        // a compute share it: stall wins regardless of insertion order.
        for flip in [false, true] {
            let mut t = Trace::default();
            let mut spans = vec![
                Span {
                    proc: 0,
                    start: 0,
                    end: 2,
                    activity: Activity::Compute,
                },
                Span {
                    proc: 0,
                    start: 2,
                    end: 4,
                    activity: Activity::Stall,
                },
            ];
            if flip {
                spans.reverse();
            }
            for s in spans {
                t.push(s);
            }
            let g = t.gantt(1, 3, 4);
            assert!(g.lines().next().unwrap().starts_with("P0  |x"), "got {g}");
        }
    }

    #[test]
    fn gantt_mixed_overheads_render_star() {
        // A send overhead and a receive overhead (equal priority,
        // different glyphs) in one cell render as '*', either order.
        for flip in [false, true] {
            let mut t = Trace::default();
            let mut spans = vec![
                Span {
                    proc: 0,
                    start: 0,
                    end: 2,
                    activity: Activity::SendOverhead,
                },
                Span {
                    proc: 0,
                    start: 2,
                    end: 4,
                    activity: Activity::RecvOverhead,
                },
            ];
            if flip {
                spans.reverse();
            }
            for s in spans {
                t.push(s);
            }
            let g = t.gantt(1, 3, 4);
            assert!(g.lines().next().unwrap().starts_with("P0  |*"), "got {g}");
        }
    }

    #[test]
    fn gantt_overhead_beats_barrier_but_loses_to_stall() {
        let mut t = Trace::default();
        for (a, s, e) in [
            (Activity::Barrier, 0, 1),
            (Activity::SendOverhead, 1, 2),
            (Activity::Stall, 2, 3),
        ] {
            t.push(Span {
                proc: 0,
                start: s,
                end: e,
                activity: a,
            });
        }
        let g = t.gantt(1, 2, 4);
        assert!(g.lines().next().unwrap().starts_with("P0  |x"), "got {g}");
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let mut t = Trace::default();
        t.push(Span {
            proc: 0,
            start: 5,
            end: 5,
            activity: Activity::Compute,
        });
        assert!(t.spans.is_empty());
    }

    #[test]
    fn stats_busy_sums_components() {
        let s = ProcStats {
            send_overhead: 2,
            recv_overhead: 3,
            compute: 5,
            stall: 7,
            barrier_wait: 100, // waiting is not busy
            msgs_sent: 0,
            msgs_recvd: 0,
        };
        assert_eq!(s.busy(), 17);
    }

    #[test]
    fn utilization_bounds() {
        let stats = SimStats {
            completion: 10,
            procs: vec![
                ProcStats {
                    compute: 10,
                    ..Default::default()
                },
                ProcStats {
                    compute: 0,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert!((stats.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(SimStats::default().utilization(), 0.0);
    }

    #[test]
    fn for_proc_is_sorted() {
        let mut t = Trace::default();
        t.push(Span {
            proc: 0,
            start: 9,
            end: 10,
            activity: Activity::Compute,
        });
        t.push(Span {
            proc: 0,
            start: 1,
            end: 2,
            activity: Activity::Compute,
        });
        t.push(Span {
            proc: 1,
            start: 0,
            end: 1,
            activity: Activity::Compute,
        });
        let spans = t.for_proc(0);
        assert_eq!(spans.len(), 2);
        assert!(spans[0].start < spans[1].start);
    }
}
