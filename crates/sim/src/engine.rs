//! The discrete-event engine implementing LogP execution semantics.
//!
//! Normative timing rules (calibrated against the paper's Figure 3; see
//! DESIGN.md):
//!
//! * a send requested at local time `t` starts at
//!   `s = max(t, last_send_start + g)` provided the capacity constraint
//!   admits it, occupies the processor during `[s, s+o)`, and the message
//!   arrives at `s + o + L'` with `L - jitter <= L' <= L`;
//! * at most `⌈L/g⌉` messages may be in transit from any processor or to
//!   any processor; a send that would exceed either bound stalls the
//!   sender (busy, accounted as stall) until an arrival frees a slot;
//! * a reception starts at `r = max(arrival, processor_free,
//!   last_recv_start + g)`, occupies `[r, r+o)`, and the program handler
//!   observes the message at `r + o`;
//! * commands issued by a program execute in FIFO order; receptions are
//!   serviced only while the command queue is empty (the processor is a
//!   single sequential execution unit);
//! * `compute(c)` occupies the processor for exactly `c` cycles (perturbed
//!   if drift is configured).
//!
//! The engine is single-threaded and bit-deterministic for a given
//! `(programs, model, config)` triple: ties in the event heap are broken
//! by (class, sequence number).

use crate::config::SimConfig;
use crate::faults::FaultState;
use crate::message::{Data, Message};
use crate::metrics::{CounterId, GaugeId, HistId, MetricsRegistry, PPK_SCALE};
use crate::obs::{BarrierRecord, Cause, ComputeRecord, MsgRecord, ObsLog, TimerRecord, UNSET};
use crate::process::{Command, Ctx, Process};
use crate::trace::{Activity, ProcStats, SimStats, Span, Trace};
use logp_core::hier::Hierarchy;
use logp_core::{Cycles, LogP, ProcId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

pub mod plane;
pub mod shard;

/// Errors terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted (runaway program).
    MaxEventsExceeded { limit: u64 },
    /// The machine went quiescent while processors still had unexecuted
    /// commands or were waiting in a barrier that can never release.
    Deadlock { stuck: Vec<ProcId> },
    /// A streaming observability sink failed to create, write, or flush
    /// its output (the simulation itself completed).
    Sink(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MaxEventsExceeded { limit } => {
                write!(f, "simulation exceeded the event budget of {limit}")
            }
            SimError::Deadlock { stuck } => {
                write!(
                    f,
                    "simulation deadlocked with processors {stuck:?} still holding work"
                )
            }
            SimError::Sink(msg) => {
                write!(f, "streaming observability sink failed: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A `Vec` indexed by global processor id but storing only the range
/// `[base, base + len)`. The parallel lane executor (`engine::plane`)
/// splits every per-processor array of the parent [`Sim`] into per-lane
/// chunks wrapped in `Off`, so all engine code keeps indexing by global
/// processor id unchanged; ordinary runs use `base == 0`, where the
/// subtraction folds into the existing bounds check. Out-of-range access
/// panics (a missed cross-lane interception site is a bug, not a race).
#[derive(Debug, Clone, Default)]
pub(crate) struct Off<T> {
    v: Vec<T>,
    base: usize,
}

impl<T> Off<T> {
    #[inline]
    pub(crate) fn with_base(v: Vec<T>, base: usize) -> Self {
        Off { v, base }
    }

    #[inline]
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.v.len()
    }

    #[inline]
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, T> {
        self.v.iter()
    }

    /// The owned backing storage (merging lane chunks back into a parent).
    #[inline]
    pub(crate) fn into_vec(self) -> Vec<T> {
        self.v
    }
}

impl<T> From<Vec<T>> for Off<T> {
    #[inline]
    fn from(v: Vec<T>) -> Self {
        Off { v, base: 0 }
    }
}

impl<T> std::ops::Index<usize> for Off<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.v[i - self.base]
    }
}

impl<T> std::ops::IndexMut<usize> for Off<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.v[i - self.base]
    }
}

/// Results of a completed run.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    pub stats: SimStats,
    pub trace: Trace,
    /// Message/compute/barrier lifecycle log (empty unless
    /// `SimConfig::record_msg_log`; stays empty when a streaming sink
    /// is configured — records flow to the sink instead).
    pub obs: ObsLog,
    /// Counters, gauges, and histograms (empty unless
    /// `SimConfig::record_metrics`).
    pub metrics: MetricsRegistry,
    /// Online o/g/L/compute/stall/retry aggregate (present iff
    /// `SimConfig::aggregate`).
    pub aggregate: Option<crate::critpath::ObsAggregate>,
    /// Host-side engine self-telemetry (wall time, lane loads,
    /// lookahead-window stats). Host-dependent, so excluded from
    /// equality.
    pub vitals: crate::metrics::EngineVitals,
}

/// Equality over the *simulated* outcome only: vitals measure the host
/// execution (wall clock, lane scheduling) and legitimately differ
/// between bit-identical runs.
impl PartialEq for SimResult {
    fn eq(&self, other: &Self) -> bool {
        self.stats == other.stats
            && self.trace == other.trace
            && self.obs == other.obs
            && self.metrics == other.metrics
            && self.aggregate == other.aggregate
    }
}

impl Eq for SimResult {}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// A message leaves the capacity window: the model counts a message as
    /// "in transit" for exactly its network flight time `L'` starting at
    /// injection, so per-endpoint occupancy of a stall-free `g`-spaced
    /// stream is exactly `⌈L/g⌉` — the model's capacity.
    Release { src: ProcId, dst: ProcId },
    /// A message reaches its destination's network interface. The payload
    /// lives in the engine's message slab (`Sim::msg_slab`) so heap
    /// entries stay small — sift operations move every byte of an event,
    /// and an inline `Message` would triple the element size.
    Arrive(MsgSlot),
    /// Send overhead complete; the sender may proceed.
    SendDone(ProcId),
    /// A `compute` command finished.
    ComputeDone(ProcId, u64),
    /// Reception overhead complete; deliver to the program.
    RecvDone(ProcId),
    /// All processors entered the barrier; release them.
    BarrierRelease,
    /// A program timer elapsed; run `on_timer` with the token.
    TimerFire(ProcId, u64),
    /// A scheduled crash-stop failure from the fault plan.
    Crash(ProcId),
    /// Re-examine a processor that deferred progress to this time.
    Wake(ProcId),
}

/// Index into [`Sim::msg_slab`] for a message in flight.
type MsgSlot = u32;

impl EventKind {
    /// Same-timestamp ordering class: arrivals first (so capacity slots
    /// freed at time `t` are visible to sends attempted at `t`), then
    /// completions, then wakes.
    fn class(&self) -> u8 {
        match self {
            // Crashes share the arrivals class but are scheduled up front,
            // so their lower sequence numbers order them before any
            // same-cycle arrival: a message reaching a processor at its
            // crash cycle is already lost.
            EventKind::Release { .. } | EventKind::Arrive(_) | EventKind::Crash(_) => 0,
            EventKind::SendDone(_)
            | EventKind::ComputeDone(..)
            | EventKind::RecvDone(_)
            | EventKind::TimerFire(..)
            | EventKind::BarrierRelease => 1,
            EventKind::Wake(_) => 2,
        }
    }
}

/// Packed event ordering key: `time` in the high 64 bits, `class` in the
/// next 8, sequence number in the low 56. One u128 comparison replaces
/// the three-field lexicographic compare in the hot heap operations.
/// 56 bits of sequence outlast any admissible event budget (`max_events`
/// caps runs at well under 2^56 scheduling operations).
fn event_key(time: Cycles, class: u8, seq: u64) -> u128 {
    debug_assert!(seq < 1 << 56, "event sequence overflow");
    ((time as u128) << 64) | ((class as u128) << 56) | seq as u128
}

fn key_time(key: u128) -> Cycles {
    (key >> 64) as Cycles
}

fn key_seq(key: u128) -> u64 {
    (key & ((1 << 56) - 1)) as u64
}

/// A 4-ary min-heap specialized for the event queue.
///
/// Compared to `std::collections::BinaryHeap<Reverse<Event>>` this keeps
/// the u128 keys in their own array (sift comparisons touch nothing
/// else), halves the tree depth, and drops the `Reverse` wrapper — the
/// event queue is the simulator's single hottest data structure. All keys
/// are distinct (the sequence number is unique per event), so pop order
/// is total and deterministic.
#[derive(Default)]
struct EventHeap {
    keys: Vec<u128>,
    kinds: Vec<EventKind>,
}

impl EventHeap {
    const ARITY: usize = 4;

    fn with_capacity(cap: usize) -> Self {
        EventHeap {
            keys: Vec::with_capacity(cap),
            kinds: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn push(&mut self, key: u128, kind: EventKind) {
        self.keys.push(key);
        self.kinds.push(kind);
        let mut i = self.keys.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys.swap(i, parent);
            self.kinds.swap(i, parent);
            i = parent;
        }
    }

    /// Smallest key without popping it (the window driver's lookahead
    /// probe).
    #[inline]
    fn peek(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    // `always`: runs once per event at the top of the loop; with the
    // loop monomorphized twice the inliner otherwise outlines it.
    #[inline(always)]
    fn pop(&mut self) -> Option<(u128, EventKind)> {
        let n = self.keys.len();
        if n == 0 {
            return None;
        }
        self.keys.swap(0, n - 1);
        self.kinds.swap(0, n - 1);
        let key = self.keys.pop().expect("heap non-empty");
        let kind = self.kinds.pop().expect("heap non-empty");
        let n = n - 1;
        // Sift down over fixed-length slices: the bound `n` is pinned to
        // both lengths up front, so every index below stays provably in
        // range regardless of the inlining context.
        let keys = &mut self.keys[..n];
        let kinds = &mut self.kinds[..n];
        let mut i = 0;
        loop {
            let first = i * Self::ARITY + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            for c in first + 1..(first + Self::ARITY).min(n) {
                if keys[c] < keys[min] {
                    min = c;
                }
            }
            if keys[i] <= keys[min] {
                break;
            }
            keys.swap(i, min);
            kinds.swap(i, min);
            i = min;
        }
        Some((key, kind))
    }
}

#[derive(Debug)]
struct InboxItem {
    /// Packed ordering key: arrival time in the high 64 bits, sequence
    /// number in the low 64 (same trick as [`Event::key`]). Also the
    /// lookup key for the message's observability payload in
    /// the observability side-map when observability is active.
    key: u128,
    msg: Message,
}

impl InboxItem {
    fn key(arrival: Cycles, seq: u64) -> u128 {
        ((arrival as u128) << 64) | seq as u128
    }

    fn arrival(&self) -> Cycles {
        (self.key >> 64) as Cycles
    }
}

impl PartialEq for InboxItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for InboxItem {}
impl PartialOrd for InboxItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InboxItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct ProcState {
    /// The loaded program. `None` only transiently, while a handler is
    /// executing (the program is detached so the handler can borrow
    /// engine state without aliasing).
    program: Option<Box<dyn Process>>,
    cmds: VecDeque<Command>,
    inbox: BinaryHeap<Reverse<InboxItem>>,
    /// Time the processor becomes free.
    busy_until: Cycles,
    /// Earliest start of the next send (gap constraint).
    next_send_slot: Cycles,
    /// Earliest start of the next reception (gap constraint).
    next_recv_slot: Cycles,
    /// An engine event for this processor is outstanding.
    engaged: bool,
    halted: bool,
    in_barrier: bool,
    barrier_entered_at: Cycles,
    /// Queued in a destination's capacity waiting list.
    waiting_on_dst: bool,
    /// Blocked on own source-side capacity.
    waiting_on_src: bool,
    /// When the current capacity stall began.
    stall_since: Option<Cycles>,
    /// Message currently paying reception overhead.
    receiving: Option<Message>,
    stats: ProcStats,
}

impl ProcState {
    fn new(program: Box<dyn Process>, inbox_cap: usize) -> Self {
        ProcState {
            program: Some(program),
            cmds: VecDeque::with_capacity(4),
            inbox: BinaryHeap::with_capacity(inbox_cap),
            busy_until: 0,
            next_send_slot: 0,
            next_recv_slot: 0,
            engaged: false,
            halted: false,
            in_barrier: false,
            barrier_entered_at: 0,
            waiting_on_dst: false,
            waiting_on_src: false,
            stall_since: None,
            receiving: None,
            stats: ProcStats::default(),
        }
    }
}

/// One event lane of the sharded engine (`crate::shard`): a contiguous
/// block of processors with its own event heap and message slab. The
/// classic path never constructs these.
struct Lane {
    /// Near-term calendar: a power-of-two ring of per-cycle buckets.
    /// Cycle `t` lives in `buckets[t & (buckets.len() - 1)]`; the ring
    /// covers `[bbase, bbase + buckets.len())`, wide enough that every
    /// window-local push (and, on ordinary machines, every arrival)
    /// inserts in O(1) instead of sifting a heap.
    buckets: Vec<Vec<(u128, EventKind)>>,
    /// First cycle the ring currently covers (the active window start).
    bbase: Cycles,
    /// Events parked in `buckets` (scan shortcut).
    bcount: u64,
    /// Overflow queue for events beyond the ring horizon (long timers
    /// and computes, bulk streams); spilled into the ring when their
    /// window arrives.
    far: EventHeap,
    /// Messages in flight toward this lane's processors (allocated in the
    /// *destination's* lane so arrivals stay lane-local).
    slab: Vec<Option<Message>>,
    free: Vec<MsgSlot>,
}

/// One barrier-relevant state change, logged by the sharded engine during
/// a window pass and replayed in canonical `(time, proc)` order by the
/// window driver to find the instant the barrier completed.
#[derive(Debug, Clone)]
struct BarrierDelta {
    t: Cycles,
    proc: ProcId,
    /// Change to the entered-count (`+1` on entry, `-1` when an entrant
    /// crashes out).
    dcount: i32,
    /// Change to the alive-count (`-1` on halt or crash).
    dalive: i32,
    /// `(cause, submit)` of a barrier entry, for the lifecycle record.
    meta: Option<(Cause, Cycles)>,
}

/// Marks a [`MsgSlot`] as an index into a lane's cross-lane [`Outbox`]
/// instead of its message slab (parallel executor only). Slot values stay
/// well below this bit on both paths (bounded by in-flight messages).
pub(crate) const OUT_BIT: MsgSlot = 1 << 31;

/// Observability payload riding with one cross-lane message through the
/// outbox; which field is live depends on the observability mode.
#[derive(Debug, Default)]
pub(crate) struct OutObs {
    /// Ride-along value for `msg_slab_obs` at the destination (record id
    /// when streaming, injection time when metrics-only; unused when the
    /// retained record travels instead).
    pub(crate) val: u64,
    /// Retained-mode lifecycle record: created at the source but appended
    /// to the *destination* lane's log at exchange (its id is assigned
    /// there), so every later lifecycle update stays lane-local.
    pub(crate) rec: Option<Box<MsgRecord>>,
    /// Streaming-mode in-flight entry (record + critical-path cumulative),
    /// moved from the source lane's `inflight` map to the destination's.
    pub(crate) infl: Option<Box<(MsgRecord, crate::critpath::Components)>>,
}

/// Cross-lane traffic staged by one lane [`Sim`] during a window pass
/// (parallel executor only; `None` on ordinary Sims). Drained by the
/// coordinator at the window barrier and delivered into destination lanes
/// in canonical `(src_lane, arrival, seq)` order.
#[derive(Debug, Default)]
pub(crate) struct Outbox {
    /// Message payloads, indexed by the low bits of an `OUT_BIT` slot.
    pub(crate) msgs: Vec<Option<Message>>,
    /// Observability payloads, parallel to `msgs` (left empty when
    /// observability is off).
    pub(crate) obs: Vec<OutObs>,
    /// Scheduled arrivals: `(time, seq, slot_idx)` with the
    /// source-canonical sequence the destination orders by.
    pub(crate) events: Vec<(Cycles, u64, MsgSlot)>,
}

impl Outbox {
    /// The observability payload slot for outbox entry `idx`, growing the
    /// side-array on demand (so the observability-off path never touches
    /// it).
    #[inline]
    pub(crate) fn obs_at(&mut self, idx: usize) -> &mut OutObs {
        if self.obs.len() <= idx {
            self.obs.resize_with(idx + 1, OutObs::default);
        }
        &mut self.obs[idx]
    }
}

/// Gauge handles, allocated only when `SimConfig::metrics_grid > 0`.
struct GaugeSet {
    inflight_total: GaugeId,
    ready_cmds: GaugeId,
    inbox_depth: GaugeId,
    util_ppk: GaugeId,
    /// One in-flight gauge per destination processor.
    per_dst: Vec<GaugeId>,
}

/// Streaming-observability state: present when a sink or the online
/// aggregate is configured. Lifecycle records divert here the moment
/// they complete — `ObsLog` stays empty and memory stays bounded by the
/// *in-flight* population (messages in the network, armed timers), not
/// the total traffic.
struct StreamState {
    sink: Box<dyn crate::obs::ObsSink>,
    sampler: crate::obs::Sampler,
    agg: Option<crate::critpath::OnlineAgg>,
    /// Sharded-engine run: record ids are structured
    /// `((proc + 1) << 40) | per_proc_seq` instead of dense, so they
    /// depend only on processor-local execution order — never on the
    /// lane count. `ObsLog::canonicalize` renumbers either form
    /// identically.
    sharded: bool,
    /// Dense next-id counters (classic engine) — identical to the ids
    /// the retained log would assign, so the streamed records equal the
    /// retained ones verbatim.
    next_msg: u64,
    next_compute: u64,
    next_timer: u64,
    /// Barrier ids are dense on both engines (releases are globally
    /// ordered).
    next_barrier: u64,
    /// Per-processor sequence counters for structured ids (sharded
    /// engine; msgs key by source, computes and timers by owner).
    sctr: Off<u64>,
    /// Messages injected but not yet delivered: the record so far plus
    /// its critical-path cumulative at injection.
    inflight: std::collections::HashMap<u64, (MsgRecord, crate::critpath::Components)>,
    /// Armed timers that have not fired yet.
    timers_live: std::collections::HashMap<u64, (TimerRecord, crate::critpath::Components)>,
    /// Records offered to the sink (post-sampling).
    emitted: u64,
}

impl StreamState {
    fn msg_id(&mut self, src: ProcId) -> u64 {
        if self.sharded {
            Self::structured(&mut self.sctr, src)
        } else {
            let id = self.next_msg;
            self.next_msg += 1;
            id
        }
    }

    fn compute_id(&mut self, p: ProcId) -> u64 {
        if self.sharded {
            Self::structured(&mut self.sctr, p)
        } else {
            let id = self.next_compute;
            self.next_compute += 1;
            id
        }
    }

    fn timer_id(&mut self, p: ProcId) -> u64 {
        if self.sharded {
            Self::structured(&mut self.sctr, p)
        } else {
            let id = self.next_timer;
            self.next_timer += 1;
            id
        }
    }

    fn barrier_id(&mut self) -> u64 {
        let id = self.next_barrier;
        self.next_barrier += 1;
        id
    }

    fn structured(sctr: &mut Off<u64>, p: ProcId) -> u64 {
        let c = &mut sctr[p as usize];
        let id = ((p as u64 + 1) << 40) | *c;
        *c += 1;
        id
    }
}

/// Engine-side observability state; boxed behind an `Option` so the
/// disabled path costs one null check per hook.
struct ObsState {
    log: ObsLog,
    metrics: MetricsRegistry,
    /// Lifecycle log (and causal metadata) enabled.
    msg_log: bool,
    /// Counters/histograms enabled.
    metrics_on: bool,
    /// Gauge sampling period (`0` = off).
    grid: Cycles,
    next_sample: Cycles,
    c_injected: CounterId,
    c_delivered: CounterId,
    c_stall_episodes: CounterId,
    c_computes: CounterId,
    c_barrier_entries: CounterId,
    h_latency: HistId,
    h_stall: HistId,
    gauges: Option<GaugeSet>,
    /// Per-processor per-command metadata `(cause, submit)`, in lockstep
    /// with that processor's `cmds` (lifecycle log only). Lives here (not
    /// in `ProcState`) so the disabled engine keeps its lean layout.
    cmd_meta: Off<VecDeque<(Cause, Cycles)>>,
    /// Per-processor payload of the message paying reception overhead.
    recv_obs: Off<u64>,
    /// Per-processor [`ComputeRecord`] id of the compute in flight.
    cur_compute: Off<u64>,
    /// Ride-along observability payload per message slab slot (record id
    /// when the lifecycle log is on, injection time otherwise).
    msg_slab_obs: Vec<u64>,
    /// Payloads of messages sitting in inboxes, keyed by
    /// [`InboxItem::key`] so `InboxItem` itself stays lean.
    inbox_obs: std::collections::HashMap<u128, u64>,
    /// [`TimerRecord`] ids of armed timers, keyed by the `TimerFire`
    /// event's sequence number (lifecycle log only).
    timer_obs: std::collections::HashMap<u64, u64>,
    /// `(proc, submit, enter, cause)` of the last barrier entrant, for
    /// the [`BarrierRecord`] written at release.
    barrier_last: (ProcId, Cycles, Cycles, Cause),
    /// Streaming mode (sink and/or online aggregate); `None` retains
    /// records in `log` as always.
    stream: Option<Box<StreamState>>,
}

impl ObsState {
    fn new(p: usize, config: &SimConfig) -> Self {
        let mut metrics = MetricsRegistry::default();
        let c_injected = metrics.counter("messages_injected");
        let c_delivered = metrics.counter("messages_delivered");
        let c_stall_episodes = metrics.counter("stall_episodes");
        let c_computes = metrics.counter("computes");
        let c_barrier_entries = metrics.counter("barrier_entries");
        let h_latency = metrics.histogram("msg_latency_cycles");
        let h_stall = metrics.histogram("stall_cycles");
        let gauges = (config.metrics_grid > 0).then(|| GaugeSet {
            inflight_total: metrics.gauge("inflight_total"),
            ready_cmds: metrics.gauge("ready_cmds"),
            inbox_depth: metrics.gauge("inbox_depth"),
            util_ppk: metrics.gauge("util_ppk"),
            per_dst: (0..p)
                .map(|d| metrics.gauge(&format!("inflight_dst_{d}")))
                .collect(),
        });
        ObsState {
            log: ObsLog::default(),
            metrics,
            msg_log: config.record_msg_log,
            metrics_on: config.record_metrics,
            grid: config.metrics_grid,
            next_sample: 0,
            c_injected,
            c_delivered,
            c_stall_episodes,
            c_computes,
            c_barrier_entries,
            h_latency,
            h_stall,
            gauges,
            cmd_meta: Off::from(vec![VecDeque::new(); p]),
            recv_obs: Off::from(vec![0; p]),
            cur_compute: Off::from(vec![0; p]),
            msg_slab_obs: Vec::new(),
            inbox_obs: std::collections::HashMap::new(),
            timer_obs: std::collections::HashMap::new(),
            barrier_last: (0, 0, 0, Cause::Start),
            stream: (config.sink.is_some() || config.aggregate).then(|| {
                let spec = config.sink.clone().unwrap_or(crate::obs::SinkSpec::Null);
                Box::new(StreamState {
                    sink: spec.build(),
                    sampler: crate::obs::Sampler::new(config.sampling.clone()),
                    agg: config
                        .aggregate
                        .then(|| crate::critpath::OnlineAgg::new(p, config.agg_grid)),
                    sharded: false,
                    next_msg: 0,
                    next_compute: 0,
                    next_timer: 0,
                    next_barrier: 0,
                    sctr: Off::default(),
                    inflight: std::collections::HashMap::new(),
                    timers_live: std::collections::HashMap::new(),
                    emitted: 0,
                })
            }),
        }
    }

    /// Observability state for one per-lane Sim of the parallel executor
    /// (`engine::plane`): the same instrument layout as [`ObsState::new`]
    /// — registered in the same order, so per-lane registries merge
    /// elementwise at the end of the run — with every per-processor array
    /// based at the lane's processor range. Gauges never exist here (the
    /// sharded dispatch requires `metrics_grid == 0`). The `stream` the
    /// caller passes (if any) is the lane's staging stream: an
    /// always-pass sampler in front of a buffer sink, re-sampled and
    /// re-emitted in serial order by the coordinator at each barrier.
    fn for_lane(
        base: usize,
        len: usize,
        config: &SimConfig,
        stream: Option<Box<StreamState>>,
    ) -> Self {
        let mut metrics = MetricsRegistry::default();
        let c_injected = metrics.counter("messages_injected");
        let c_delivered = metrics.counter("messages_delivered");
        let c_stall_episodes = metrics.counter("stall_episodes");
        let c_computes = metrics.counter("computes");
        let c_barrier_entries = metrics.counter("barrier_entries");
        let h_latency = metrics.histogram("msg_latency_cycles");
        let h_stall = metrics.histogram("stall_cycles");
        ObsState {
            log: ObsLog::default(),
            metrics,
            msg_log: config.record_msg_log,
            metrics_on: config.record_metrics,
            grid: 0,
            next_sample: 0,
            c_injected,
            c_delivered,
            c_stall_episodes,
            c_computes,
            c_barrier_entries,
            h_latency,
            h_stall,
            gauges: None,
            cmd_meta: Off::with_base(vec![VecDeque::new(); len], base),
            recv_obs: Off::with_base(vec![0; len], base),
            cur_compute: Off::with_base(vec![0; len], base),
            msg_slab_obs: Vec::new(),
            inbox_obs: std::collections::HashMap::new(),
            timer_obs: std::collections::HashMap::new(),
            barrier_last: (0, 0, 0, Cause::Start),
            stream,
        }
    }
}

/// Hierarchical-machine state ([`Sim::new_hier`]): the level structure
/// plus the per-level admission windows. When present, every message
/// pays the (L, o, g) of the src/dst pair's lowest common level, and the
/// classic engine's capacity windows are kept per level (stride-indexed
/// `level * P + proc` in `in_flight_from`/`in_flight_to`).
#[derive(Debug, Clone)]
struct HierState {
    h: Hierarchy,
    /// Per-level source/destination windows `⌈L_k/g_k⌉`
    /// (`u64::MAX` when capacity is unenforced).
    caps: Vec<u64>,
}

/// A configured LogP machine with programs loaded on its processors.
pub struct Sim {
    model: LogP,
    config: SimConfig,
    procs: Off<ProcState>,
    heap: EventHeap,
    seq: u64,
    now: Cycles,
    in_flight_from: Vec<u64>,
    in_flight_to: Vec<u64>,
    /// Messages injected toward each destination whose reception has not
    /// yet completed (network window + NI buffer occupancy).
    outstanding_to: Vec<u64>,
    dst_waiters: Vec<VecDeque<ProcId>>,
    rng: SmallRng,
    /// Per-processor systematic compute scale in parts-per-1024 (1024 =
    /// nominal speed); drawn once at construction from `proc_skew_ppk`.
    proc_scale: Off<i64>,
    trace: Trace,
    stats: SimStats,
    barrier_count: u32,
    alive: u32,
    capacity: u64,
    /// Reusable command buffer for handler invocations (hot path: one
    /// handler per event; reusing the allocation keeps the per-event cost
    /// allocation-free).
    cmd_scratch: Vec<Command>,
    /// Reusable buffer for draining a destination's capacity waiters
    /// (`Release` / `RecvDone`), so waking senders never allocates.
    waiter_scratch: Vec<ProcId>,
    /// Reusable buffer for the set of processors leaving a barrier.
    released_scratch: Vec<ProcId>,
    /// Payloads of messages whose `Arrive` event is pending, indexed by
    /// [`MsgSlot`]. Slots recycle through `msg_free`, so steady-state
    /// message traffic allocates nothing.
    msg_slab: Vec<Option<Message>>,
    msg_free: Vec<MsgSlot>,
    /// Max admissible outstanding messages per destination:
    /// capacity (network window) + NI buffer.
    max_outstanding: u64,
    /// Fault-injection state; `None` monomorphizes every fault branch
    /// away (`FAULTS` is `self.faults.is_some()`, fixed at [`Sim::run`]).
    faults: Option<Box<FaultState>>,
    /// Hierarchical machine description; `None` runs the flat model
    /// (`Sim::new`). Installed by [`Sim::new_hier`] — always, even for a
    /// one-level hierarchy, so the flat-projection identity tests
    /// exercise the per-pair parameter path end to end.
    hier: Option<Box<HierState>>,
    /// Observability state; `None` keeps every hook a single null check.
    /// Everything observability-owned (including message payload
    /// side-maps) lives behind this box so `Sim`'s own layout — and the
    /// cache lines the disabled hot path walks — matches the
    /// unobservable engine exactly.
    obs: Option<Box<ObsState>>,
    // ---- sharded lane engine state (`crate::shard`) ----
    // Everything below is built by the sharded driver and stays empty on
    // the classic path; the `SHARDED = false` monomorphizations never
    // touch it.
    /// Per-lane event heaps and message slabs.
    lanes: Vec<Lane>,
    /// Processor → owning lane.
    lane_of: Off<u32>,
    /// Per-processor counters feeding the low 36 bits of every canonical
    /// event key that processor issues (and its latency/drift draws), so
    /// keys and draws depend only on processor-local execution order —
    /// never on how processors are partitioned into lanes.
    pctr: Off<u64>,
    /// Per-source release-time rings: the network-release instants of the
    /// source's in-flight messages, kept sorted. Replaces the classic
    /// engine's `Release` events for source-capacity admission.
    rings: Off<VecDeque<Cycles>>,
    /// Barrier deltas logged during the current window pass.
    bdeltas: Vec<BarrierDelta>,
    /// Cross-lane outbox: present only on the per-lane Sims the parallel
    /// executor builds (`engine::plane`). When set, a send whose
    /// destination falls outside this Sim's processor range diverts here
    /// instead of the (absent) destination lane.
    out: Option<Box<Outbox>>,
    /// Debug-only count of arena growths past the construction-time
    /// pre-size (event heap, message slab). Million-processor setup must
    /// allocate each arena exactly once; tests pin this at zero for the
    /// standard collectives.
    #[cfg(debug_assertions)]
    arena_reallocs: u64,
    // ---- engine vitals (host-side self-telemetry; see EngineVitals) ----
    /// Lookahead windows executed (sharded driver).
    v_windows: u64,
    /// Quiescence fast-forwards (sharded driver).
    v_fast_forwards: u64,
    /// Deepest calendar bucket drained in one batch (sharded driver).
    v_bucket_max: u64,
    /// Events spilled to a lane's `far` heap.
    v_far_spills: u64,
    /// Events processed per lane (sharded driver).
    v_lane_events: Vec<u64>,
    /// Worker threads the run executed on (0 = serial).
    v_workers: u32,
    /// Wall time each lane spent pumping, summed over windows (parallel
    /// executor only).
    v_lane_wall_ns: Vec<u64>,
    /// Wall time the coordinator spent waiting at window barriers
    /// (parallel executor only).
    v_barrier_wait_ns: u64,
    /// 1 when a capacity-enforcing config ran on the sharded engine,
    /// which relaxes enforcement to the source-side window (see
    /// DESIGN.md); surfaced as the `vitals_capacity_relaxed` counter.
    v_capacity_relaxed: u64,
}

impl Sim {
    /// Create a machine; every processor initially runs
    /// [`crate::process::Passive`].
    pub fn new(model: LogP, config: SimConfig) -> Self {
        let mut config = config;
        // A streaming sink or the online aggregate needs the lifecycle
        // hooks live (records divert to the stream instead of the log).
        if config.sink.is_some() || config.aggregate {
            config.record_msg_log = true;
        }
        // The critical-path analyzer attributes wait windows by scanning
        // activity spans, so the lifecycle log requires the trace; a
        // positive gauge grid requires the registry.
        if config.record_msg_log {
            config.record_trace = true;
        }
        if config.metrics_grid > 0 {
            config.record_metrics = true;
        }
        let p = model.p as usize;
        let capacity = if config.enforce_capacity {
            model.capacity()
        } else {
            u64::MAX
        };
        let ni_buffer = if config.enforce_capacity {
            config.ni_buffer.unwrap_or_else(|| model.capacity() + 2)
        } else {
            u64::MAX
        };
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let skew = config.proc_skew_ppk as i64;
        let proc_scale: Vec<i64> = (0..p)
            .map(|_| {
                1024 + if skew == 0 {
                    0
                } else {
                    rng.gen_range(-skew..=skew)
                }
            })
            .collect();
        let max_outstanding = capacity.saturating_add(ni_buffer);
        // Inbox occupancy is bounded by the per-destination outstanding
        // window when capacity is enforced; clamp for the unenforced case.
        let inbox_cap = max_outstanding.min(64) as usize + 1;
        Sim {
            model,
            procs: Off::from(
                (0..p)
                    .map(|_| ProcState::new(Box::new(crate::process::Passive), inbox_cap))
                    .collect::<Vec<_>>(),
            ),
            heap: EventHeap::with_capacity(4 * p + 16),
            seq: 0,
            now: 0,
            in_flight_from: vec![0; p],
            in_flight_to: vec![0; p],
            outstanding_to: vec![0; p],
            dst_waiters: (0..p).map(|_| VecDeque::new()).collect(),
            rng,
            proc_scale: Off::from(proc_scale),
            trace: Trace::default(),
            stats: SimStats {
                procs: vec![ProcStats::default(); p],
                ..Default::default()
            },
            barrier_count: 0,
            alive: model.p,
            capacity,
            cmd_scratch: Vec::with_capacity(8),
            waiter_scratch: Vec::new(),
            released_scratch: Vec::new(),
            // Sized from P so million-processor construction does one
            // allocation per arena instead of doubling growth: in-flight
            // messages are bounded by the per-source window when capacity
            // is enforced, and the collectives top out near one message
            // per processor plus slack when it is not.
            msg_slab: Vec::with_capacity(2 * p + 16),
            msg_free: Vec::with_capacity(2 * p + 16),
            max_outstanding,
            faults: config.faults.clone().map(|plan| {
                for &(proc, _) in &plan.crashes {
                    assert!(
                        proc < model.p,
                        "fault plan crashes processor {proc} but P = {}",
                        model.p
                    );
                }
                Box::new(FaultState::new(plan, p))
            }),
            hier: None,
            obs: (config.record_msg_log || config.record_metrics)
                .then(|| Box::new(ObsState::new(p, &config))),
            config,
            lanes: Vec::new(),
            lane_of: Off::default(),
            pctr: Off::default(),
            rings: Off::default(),
            bdeltas: Vec::new(),
            out: None,
            #[cfg(debug_assertions)]
            arena_reallocs: 0,
            v_windows: 0,
            v_fast_forwards: 0,
            v_bucket_max: 0,
            v_far_spills: 0,
            v_lane_events: Vec::new(),
            v_workers: 0,
            v_lane_wall_ns: Vec::new(),
            v_barrier_wait_ns: 0,
            v_capacity_relaxed: 0,
        }
    }

    /// Create a machine over a hierarchical description: every message
    /// pays the (L, o, g) of its src/dst pair's lowest common level
    /// (`docs/HIERARCHY.md`). The flat [`Sim::model`] is the hierarchy's
    /// outermost-level projection; a one-level hierarchy reproduces
    /// `Sim::new(h.flat_projection(), config)` cycle-exactly (pinned in
    /// `tests/hierarchy.rs`).
    ///
    /// Capacity semantics: the classic engine enforces each level's
    /// `⌈L_k/g_k⌉` window separately per endpoint; the sharded engine's
    /// source window uses the loosest level ([`Hierarchy::capacity`]) —
    /// the same documented relaxation as its flat destination-side rule.
    pub fn new_hier(h: &Hierarchy, config: SimConfig) -> Self {
        let mut sim = Sim::new(h.flat_projection(), config);
        let p = sim.model.p as usize;
        let enforce = sim.config.enforce_capacity;
        let caps: Vec<u64> = (0..h.depth())
            .map(|k| {
                if enforce {
                    h.level_capacity(k)
                } else {
                    u64::MAX
                }
            })
            .collect();
        // The scalar window (sharded source ring, NI-buffer base) is the
        // loosest level's; per-level admission uses `caps`.
        sim.capacity = if enforce { h.capacity() } else { u64::MAX };
        let ni_buffer = if enforce {
            sim.config.ni_buffer.unwrap_or_else(|| h.capacity() + 2)
        } else {
            u64::MAX
        };
        sim.max_outstanding = sim.capacity.saturating_add(ni_buffer);
        sim.in_flight_from = vec![0; h.depth() * p];
        sim.in_flight_to = vec![0; h.depth() * p];
        sim.hier = Some(Box::new(HierState { h: h.clone(), caps }));
        sim
    }

    /// The hierarchy this machine runs under, if built by
    /// [`Sim::new_hier`].
    pub fn hierarchy(&self) -> Option<&Hierarchy> {
        self.hier.as_deref().map(|hs| &hs.h)
    }

    /// The (L, o, g) a message from `src` to `dst` pays: the pair's
    /// lowest-common-level parameters under a hierarchy, the flat model
    /// otherwise.
    #[inline]
    fn pair_log(&self, src: ProcId, dst: ProcId) -> (Cycles, Cycles, Cycles) {
        match self.hier.as_deref() {
            Some(hs) => {
                let lv = hs.h.params_between(src, dst);
                (lv.l, lv.o, lv.g)
            }
            None => (self.model.l, self.model.o, self.model.g),
        }
    }

    /// The level whose capacity window a `src → dst` message occupies
    /// (0 on flat machines), and that level's admission bound.
    #[inline]
    fn pair_level(&self, src: ProcId, dst: ProcId) -> (usize, u64) {
        match self.hier.as_deref() {
            Some(hs) => {
                let k = hs.h.common_level(src, dst);
                (k, hs.caps[k])
            }
            None => (0, self.capacity),
        }
    }

    /// The half-open global processor-id range this Sim owns: the full
    /// machine for ordinary Sims, one lane's slice for the per-lane Sims
    /// of the parallel executor.
    #[inline]
    fn proc_range(&self) -> std::ops::Range<usize> {
        self.procs.base()..self.procs.base() + self.procs.len()
    }

    /// Debug builds count every growth of a pre-sized arena past its
    /// construction-time capacity; the standard collectives pin this at
    /// zero so `P = 10^6` setup stays one-allocation-per-arena.
    #[cfg(debug_assertions)]
    pub fn arena_reallocs(&self) -> u64 {
        self.arena_reallocs
    }

    /// The machine model being simulated.
    pub fn model(&self) -> &LogP {
        &self.model
    }

    /// Install a program on processor `p`.
    pub fn set_process(&mut self, p: ProcId, program: Box<dyn Process>) {
        self.procs[p as usize].program = Some(program);
    }

    /// Install the programs produced by `f(p)` on every processor.
    pub fn set_all<F>(&mut self, mut f: F)
    where
        F: FnMut(ProcId) -> Box<dyn Process>,
    {
        for p in 0..self.model.p {
            self.set_process(p, f(p));
        }
    }

    #[inline]
    fn schedule(&mut self, time: Cycles, kind: EventKind) {
        let class = kind.class();
        self.seq += 1;
        #[cfg(debug_assertions)]
        if self.heap.keys.len() == self.heap.keys.capacity() {
            self.arena_reallocs += 1;
        }
        self.heap.push(event_key(time, class, self.seq), kind);
    }

    /// Park a message in the slab until its `Arrive` event fires.
    #[inline]
    fn stash_msg(&mut self, msg: Message) -> MsgSlot {
        if let Some(slot) = self.msg_free.pop() {
            self.msg_slab[slot as usize] = Some(msg);
            slot
        } else {
            #[cfg(debug_assertions)]
            if self.msg_slab.len() == self.msg_slab.capacity() {
                self.arena_reallocs += 1;
            }
            self.msg_slab.push(Some(msg));
            (self.msg_slab.len() - 1) as MsgSlot
        }
    }

    /// Reclaim a slab slot at arrival.
    #[inline]
    fn unstash_msg(&mut self, slot: MsgSlot) -> Message {
        self.msg_free.push(slot);
        self.msg_slab[slot as usize]
            .take()
            .expect("message slot occupied")
    }

    // ---- sharded lane engine primitives ----
    //
    // The sharded engine keys every event canonically: the low 56 bits of
    // the heap key are `(proc + 1) << 36 | ctr` where `ctr` is a
    // per-processor issuance counter (`pctr`), so same-timestamp ordering
    // depends only on processor-local execution order and is therefore
    // identical for every lane count. Crash events use the bare processor
    // id (< 2^20 < 2^36 ≤ any counter-derived key), preserving the
    // classic rule that a crash orders before every same-cycle arrival.
    // The `+ 1` keeps processor 0's counter keys out of the crash
    // namespace; it costs one slot of the 20-bit processor budget
    // (`P <= 2^20 - 1`, checked at dispatch).

    /// Claim the next canonical key-counter value of processor `p`.
    #[inline]
    fn bump_pctr(&mut self, p: ProcId) -> u64 {
        let c = self.pctr[p as usize];
        debug_assert!(c < 1 << 36, "per-processor event counter overflow");
        self.pctr[p as usize] = c + 1;
        c
    }

    /// Park an event in the lane owning `owner`: O(1) into the calendar
    /// ring when the instant is within the ring horizon, otherwise into
    /// the lane's overflow heap (spilled back when its window arrives).
    /// Event times never precede `bbase` — they are strictly after
    /// `self.now`, which the window driver keeps at or above every
    /// lane's ring base.
    #[inline]
    fn push_lane(&mut self, owner: ProcId, key: u128, kind: EventKind) {
        let lane = &mut self.lanes[self.lane_of[owner as usize] as usize];
        let t = key_time(key);
        let b = lane.buckets.len() as u64;
        if t.wrapping_sub(lane.bbase) < b {
            lane.buckets[(t & (b - 1)) as usize].push((key, kind));
            lane.bcount += 1;
        } else {
            #[cfg(debug_assertions)]
            if lane.far.keys.len() == lane.far.keys.capacity() {
                self.arena_reallocs += 1;
            }
            lane.far.push(key, kind);
            self.v_far_spills += 1;
        }
    }

    /// Schedule an event on either engine. On the classic path this is
    /// exactly [`Sim::schedule`]; on the sharded path the event goes to
    /// its owning processor's lane under a canonical key. Returns the
    /// sequence number assigned (the `TimerFire` observability key).
    #[inline]
    fn sched<const SHARDED: bool>(&mut self, time: Cycles, kind: EventKind) -> u64 {
        if !SHARDED {
            self.schedule(time, kind);
            return self.seq;
        }
        let owner = match kind {
            EventKind::SendDone(p)
            | EventKind::ComputeDone(p, _)
            | EventKind::RecvDone(p)
            | EventKind::TimerFire(p, _)
            | EventKind::Wake(p) => p,
            // Arrivals go through `sched_arrive` (source-canonical key,
            // destination-lane routing); releases are rings and barrier
            // releases are window-driver work — neither reaches a heap.
            _ => unreachable!("classic-only event scheduled on the sharded path"),
        };
        let seq = ((owner as u64 + 1) << 36) | self.bump_pctr(owner);
        self.push_lane(owner, event_key(time, kind.class(), seq), kind);
        seq
    }

    /// Schedule a message arrival: source-canonical key (`src << 36 |
    /// ctr`, also the inbox tiebreak at the destination), routed to the
    /// destination's lane.
    #[inline]
    fn sched_arrive<const SHARDED: bool>(
        &mut self,
        time: Cycles,
        slot: MsgSlot,
        src: ProcId,
        dst: ProcId,
    ) {
        if !SHARDED {
            self.schedule(time, EventKind::Arrive(slot));
            return;
        }
        let seq = ((src as u64 + 1) << 36) | self.bump_pctr(src);
        if slot & OUT_BIT != 0 {
            // Cross-lane send on the parallel executor: the arrival is
            // exchanged at the window barrier. The source-canonical seq
            // was drawn above exactly as for a local arrival, so keys —
            // and therefore the merged schedule — are identical to a
            // serial run.
            let out = self
                .out
                .as_deref_mut()
                .expect("OUT_BIT slot without outbox");
            out.events.push((time, seq, slot & !OUT_BIT));
            return;
        }
        self.push_lane(dst, event_key(time, 0, seq), EventKind::Arrive(slot));
    }

    /// Park a message in its destination lane's slab (sharded path). The
    /// returned slot is interleaved-encoded (`idx * lanes + lane`) so
    /// observability side-arrays stay dense across lanes.
    #[inline]
    fn stash_msg_sharded(&mut self, dst: ProcId, msg: Message) -> MsgSlot {
        if self.out.is_some() && !self.proc_range().contains(&(dst as usize)) {
            let out = self.out.as_deref_mut().expect("checked above");
            out.msgs.push(Some(msg));
            return (out.msgs.len() - 1) as MsgSlot | OUT_BIT;
        }
        let n = self.lanes.len() as u32;
        let li = self.lane_of[dst as usize];
        let lane = &mut self.lanes[li as usize];
        let idx = if let Some(slot) = lane.free.pop() {
            lane.slab[slot as usize] = Some(msg);
            slot
        } else {
            #[cfg(debug_assertions)]
            if lane.slab.len() == lane.slab.capacity() {
                self.arena_reallocs += 1;
            }
            lane.slab.push(Some(msg));
            (lane.slab.len() - 1) as MsgSlot
        };
        idx * n + li
    }

    /// Reclaim an interleaved-encoded slot at arrival (sharded path).
    #[inline]
    fn unstash_msg_sharded(&mut self, slot: MsgSlot) -> Message {
        let n = self.lanes.len() as u32;
        let (li, idx) = (slot % n, slot / n);
        let lane = &mut self.lanes[li as usize];
        lane.free.push(idx);
        lane.slab[idx as usize]
            .take()
            .expect("message slot occupied")
    }

    /// Record an in-flight message's network-release instant in its
    /// source's ring (sharded replacement for `Release` events). Keeps
    /// the ring sorted; jitter-free runs append in O(1).
    #[inline]
    fn ring_push(&mut self, src: usize, release: Cycles) {
        let now = self.now;
        let ring = &mut self.rings[src];
        while ring.front().is_some_and(|&t| t <= now) {
            ring.pop_front();
        }
        if ring.back().is_some_and(|&b| b > release) {
            let pos = ring.partition_point(|&t| t <= release);
            ring.insert(pos, release);
        } else {
            ring.push_back(release);
        }
        self.stats.max_inflight_per_src = self.stats.max_inflight_per_src.max(ring.len() as u64);
    }

    /// Evict released entries and report whether `src` may inject another
    /// message at `now` under the ⌈L/g⌉ source window. Mirrors the
    /// classic engine exactly: a message released at `t` frees its slot
    /// for sends attempted at `t` (`Release` carries event class 0).
    #[inline]
    fn ring_admit(&mut self, src: usize, now: Cycles) -> bool {
        let ring = &mut self.rings[src];
        while ring.front().is_some_and(|&t| t <= now) {
            ring.pop_front();
        }
        (ring.len() as u64) < self.capacity
    }

    /// Latency draw on either engine. The sharded draw is counter-mode
    /// (`logp_core::rng`): a pure function of `(seed, src, ctr)`, so the
    /// stream each source sees is independent of lane count. The two
    /// engines draw different (equally legitimate) jitter streams; they
    /// coincide exactly when `latency_jitter` is 0.
    #[inline]
    fn draw_latency_on<const SHARDED: bool>(&mut self, src: ProcId, l: Cycles) -> Cycles {
        if !SHARDED {
            return self.draw_latency(l);
        }
        let j = self.config.latency_jitter.min(l.saturating_sub(1));
        if j == 0 {
            l
        } else {
            let ctr = self.bump_pctr(src);
            let r = logp_core::rng::mix(&[self.config.seed, 0x004C_4154, src as u64, ctr]);
            l - r % (j + 1)
        }
    }

    /// Compute-perturbation draw on either engine (sharded: counter-mode
    /// per processor, see [`Sim::draw_latency_on`]).
    #[inline]
    fn draw_compute_on<const SHARDED: bool>(&mut self, proc: ProcId, cycles: Cycles) -> Cycles {
        if !SHARDED {
            return self.draw_compute(proc, cycles);
        }
        let ppk = self.config.drift_ppk as i64;
        if cycles == 0 || (ppk == 0 && self.config.proc_skew_ppk == 0) {
            return cycles;
        }
        let noise = if ppk == 0 {
            0
        } else {
            let ctr = self.bump_pctr(proc);
            let r = logp_core::rng::mix(&[self.config.seed, 0x0044_5246, proc as u64, ctr]);
            -ppk + (r % (2 * ppk as u64 + 1)) as i64
        };
        let scale = self.proc_scale[proc as usize] + noise;
        let scaled = cycles as i128 * scale.max(0) as i128 / 1024;
        scaled.max(0) as Cycles
    }

    /// Record one message injected from `src` toward `dst`: bump both
    /// in-flight windows and the destination's NI occupancy, and track
    /// the high-water marks reported in [`SimStats`]. Shared by `Send`
    /// and `SendBulk` so the two paths cannot drift apart.
    #[inline]
    fn note_injection(&mut self, lvl: usize, src: usize, dst: usize) {
        let b = lvl * self.model.p as usize;
        self.in_flight_from[b + src] += 1;
        self.in_flight_to[b + dst] += 1;
        self.outstanding_to[dst] += 1;
        self.stats.max_inflight_per_src = self
            .stats
            .max_inflight_per_src
            .max(self.in_flight_from[b + src]);
        self.stats.max_inflight_per_dst = self
            .stats
            .max_inflight_per_dst
            .max(self.in_flight_to[b + dst]);
    }

    fn draw_latency(&mut self, l: Cycles) -> Cycles {
        let j = self.config.latency_jitter.min(l.saturating_sub(1));
        if j == 0 {
            l
        } else {
            l - self.rng.gen_range(0..=j)
        }
    }

    fn draw_compute(&mut self, proc: ProcId, cycles: Cycles) -> Cycles {
        let ppk = self.config.drift_ppk as i64;
        if cycles == 0 || (ppk == 0 && self.config.proc_skew_ppk == 0) {
            return cycles;
        }
        let noise = if ppk == 0 {
            0
        } else {
            self.rng.gen_range(-ppk..=ppk)
        };
        let scale = self.proc_scale[proc as usize] + noise;
        let scaled = cycles as i128 * scale.max(0) as i128 / 1024;
        scaled.max(0) as Cycles
    }

    fn span(&mut self, proc: ProcId, start: Cycles, end: Cycles, activity: Activity) {
        if self.config.record_trace {
            let sp = Span {
                proc,
                start,
                end,
                activity,
            };
            if let Some(obs) = self.obs.as_deref_mut() {
                if let Some(st) = obs.stream.as_deref_mut() {
                    Self::stream_span(st, &sp);
                    return;
                }
            }
            self.trace.push(sp);
        }
    }

    /// Route one activity span into the streaming layer: the online
    /// aggregate sees every span; the sink sees sampled non-empty ones.
    #[cold]
    #[inline(never)]
    fn stream_span(st: &mut StreamState, sp: &Span) {
        if sp.start >= sp.end {
            return;
        }
        if let Some(agg) = st.agg.as_mut() {
            agg.on_span(sp);
        }
        if st.sampler.spans_enabled() && st.sampler.pass_proc(sp.proc) {
            st.sink.on_span(sp);
        }
    }

    /// Dequeue the observability metadata of the command just popped from
    /// `cmds` (a no-op unless the lifecycle log is on).
    #[inline]
    fn pop_meta(&mut self, idx: usize) -> (Cause, Cycles) {
        match self.obs.as_deref_mut() {
            Some(o) if o.msg_log => {
                let meta = o.cmd_meta[idx]
                    .pop_front()
                    .expect("cmd_meta tracks cmds in lockstep");
                if let Some(st) = o.stream.as_deref_mut() {
                    if let Some(agg) = st.agg.as_mut() {
                        agg.on_pop(meta.0);
                    }
                }
                meta
            }
            _ => (Cause::Start, self.now),
        }
    }

    /// Park an arriving message's observability payload under its inbox
    /// key (out of line: only runs when observability is active).
    #[cold]
    #[inline(never)]
    fn note_arrival(&mut self, dst: ProcId, slot: MsgSlot, key: u128) {
        let now = self.now;
        let obs = self.obs.as_deref_mut().expect("only called when observed");
        let val = obs.msg_slab_obs[slot as usize];
        obs.inbox_obs.insert(key, val);
        if let Some(st) = obs.stream.as_deref_mut() {
            if let Some(agg) = st.agg.as_mut() {
                agg.on_arrival(dst, now);
            }
        }
    }

    /// Claim a dequeued inbox message's observability payload and record
    /// the reception start in its lifecycle record.
    #[cold]
    #[inline(never)]
    fn note_reception(&mut self, p: ProcId, key: u128, recv_gate: Cycles) {
        let now = self.now;
        if let Some(obs) = self.obs.as_deref_mut() {
            let val = obs.inbox_obs.remove(&key).unwrap_or(0);
            obs.recv_obs[p as usize] = val;
            if let Some(st) = obs.stream.as_deref_mut() {
                if let Some((rec, cum)) = st.inflight.get_mut(&val) {
                    rec.recv_gate = recv_gate;
                    rec.recv_start = now;
                    if let Some(agg) = st.agg.as_mut() {
                        agg.on_reception(rec, cum);
                    }
                }
            } else if obs.msg_log {
                let rec = &mut obs.log.msgs[val as usize];
                rec.recv_gate = recv_gate;
                rec.recv_start = now;
            }
        }
    }

    /// Record an injected message's lifecycle head and return the value
    /// to ride along with it (record id, or injection time for
    /// metrics-only runs).
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn record_send(
        &mut self,
        slot: MsgSlot,
        src: ProcId,
        dst: ProcId,
        tag: u32,
        words: u64,
        meta: (Cause, Cycles),
        send_gate: Cycles,
        inject: Cycles,
        sent: Cycles,
        arrive: Cycles,
        dup: bool,
    ) {
        let outgoing = slot & OUT_BIT != 0;
        let oi = (slot & !OUT_BIT) as usize;
        let out = self.out.as_deref_mut();
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        // An outgoing (cross-lane, parallel executor) message's payload
        // rides the outbox instead of this Sim's side-arrays: the
        // destination lane installs it at the window exchange, so every
        // later lifecycle update stays lane-local.
        let mut slab_val = None;
        if obs.msg_log {
            let mut rec = MsgRecord {
                id: 0,
                src,
                dst,
                tag,
                words,
                cause: meta.0,
                submit: meta.1,
                send_gate,
                inject,
                sent,
                arrive,
                recv_gate: UNSET,
                recv_start: UNSET,
                deliver: UNSET,
            };
            if let Some(st) = obs.stream.as_deref_mut() {
                rec.id = st.msg_id(src);
                let cum = match st.agg.as_mut() {
                    Some(agg) => agg.on_send(&rec, dup),
                    None => Default::default(),
                };
                if outgoing {
                    let o = out.expect("OUT_BIT slot without outbox").obs_at(oi);
                    o.val = rec.id;
                    o.infl = Some(Box::new((rec, cum)));
                } else {
                    slab_val = Some(rec.id);
                    st.inflight.insert(rec.id, (rec, cum));
                }
            } else if outgoing {
                // Retained mode: the record is appended to the
                // *destination* lane's log at exchange (ids are assigned
                // there; the end-of-run merge renumbers them globally).
                out.expect("OUT_BIT slot without outbox").obs_at(oi).rec = Some(Box::new(rec));
            } else {
                rec.id = obs.log.msgs.len() as u64;
                slab_val = Some(rec.id);
                obs.log.msgs.push(rec);
            }
        } else if outgoing {
            out.expect("OUT_BIT slot without outbox").obs_at(oi).val = inject;
        } else {
            slab_val = Some(inject);
        }
        if obs.metrics_on {
            let c = obs.c_injected;
            obs.metrics.inc(c, 1);
        }
        if let Some(val) = slab_val {
            let s = slot as usize;
            if obs.msg_slab_obs.len() <= s {
                obs.msg_slab_obs.resize(s + 1, 0);
            }
            obs.msg_slab_obs[s] = val;
        }
    }

    /// Record a message the fault layer dropped in flight: it gets a
    /// lifecycle record like any injected message, but its arrival-side
    /// timestamps stay [`UNSET`] forever.
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn record_lost(
        &mut self,
        src: ProcId,
        dst: ProcId,
        tag: u32,
        words: u64,
        meta: (Cause, Cycles),
        send_gate: Cycles,
        inject: Cycles,
        sent: Cycles,
        dup: bool,
    ) {
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        if obs.msg_log {
            if let Some(st) = obs.stream.as_deref_mut() {
                let id = st.msg_id(src);
                let rec = MsgRecord {
                    id,
                    src,
                    dst,
                    tag,
                    words,
                    cause: meta.0,
                    submit: meta.1,
                    send_gate,
                    inject,
                    sent,
                    arrive: UNSET,
                    recv_gate: UNSET,
                    recv_start: UNSET,
                    deliver: UNSET,
                };
                if let Some(agg) = st.agg.as_mut() {
                    agg.on_lost(src, meta.1, dup);
                }
                if let Some(out) = st.sampler.offer_msg(rec) {
                    st.emitted += 1;
                    st.sink.on_msg(&out);
                }
            } else {
                let id = obs.log.msgs.len() as u64;
                obs.log.msgs.push(MsgRecord {
                    id,
                    src,
                    dst,
                    tag,
                    words,
                    cause: meta.0,
                    submit: meta.1,
                    send_gate,
                    inject,
                    sent,
                    arrive: UNSET,
                    recv_gate: UNSET,
                    recv_start: UNSET,
                    deliver: UNSET,
                });
            }
        }
        if obs.metrics_on {
            let c = obs.c_injected;
            obs.metrics.inc(c, 1);
        }
    }

    /// Record an armed timer's lifecycle, keyed by the `TimerFire`
    /// event's sequence number so the fire can recover the record id.
    #[cold]
    #[inline(never)]
    fn record_timer(&mut self, p: ProcId, tag: u64, meta: (Cause, Cycles), fire: Cycles, seq: u64) {
        let now = self.now;
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.msg_log {
                if let Some(st) = obs.stream.as_deref_mut() {
                    let id = st.timer_id(p);
                    let rec = TimerRecord {
                        id,
                        proc: p,
                        tag,
                        cause: meta.0,
                        submit: meta.1,
                        armed: now,
                        fire,
                    };
                    let base = match st.agg.as_mut() {
                        Some(agg) => {
                            agg.on_timer_armed();
                            agg.pending_base
                        }
                        None => Default::default(),
                    };
                    st.timers_live.insert(id, (rec, base));
                    obs.timer_obs.insert(seq, id);
                } else {
                    let id = obs.log.timers.len() as u64;
                    obs.log.timers.push(TimerRecord {
                        id,
                        proc: p,
                        tag,
                        cause: meta.0,
                        submit: meta.1,
                        armed: now,
                        fire,
                    });
                    obs.timer_obs.insert(seq, id);
                }
            }
        }
    }

    /// Resolve a firing timer's causal identity from its event key.
    #[cold]
    #[inline(never)]
    fn timer_cause(&mut self, key: u128) -> Cause {
        match self.obs.as_deref_mut() {
            Some(o) if o.msg_log => match o.timer_obs.remove(&key_seq(key)) {
                Some(id) => {
                    if let Some(st) = o.stream.as_deref_mut() {
                        if let Some((rec, base)) = st.timers_live.remove(&id) {
                            if let Some(agg) = st.agg.as_mut() {
                                agg.on_timer_fire(&rec, base);
                            }
                            if st.sampler.pass_proc(rec.proc) {
                                st.emitted += 1;
                                st.sink.on_timer(&rec);
                            }
                        }
                    }
                    Cause::Retry(id)
                }
                None => Cause::Start,
            },
            _ => Cause::Start,
        }
    }

    /// Record the end of a capacity-stall episode.
    #[cold]
    #[inline(never)]
    fn record_stall(&mut self, dur: Cycles) {
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.metrics_on {
                let (c, h) = (obs.c_stall_episodes, obs.h_stall);
                obs.metrics.inc(c, 1);
                obs.metrics.observe(h, dur);
            }
        }
    }

    /// Record a delivery completing now; `obs_val` is the message's
    /// ride-along payload.
    #[cold]
    #[inline(never)]
    fn record_delivery(&mut self, obs_val: u64) {
        let now = self.now;
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        let since = if obs.msg_log {
            if let Some(st) = obs.stream.as_deref_mut() {
                match st.inflight.remove(&obs_val) {
                    Some((mut rec, cum)) => {
                        rec.deliver = now;
                        if let Some(agg) = st.agg.as_mut() {
                            agg.on_delivery(&rec, cum);
                        }
                        let submit = rec.submit;
                        if let Some(out) = st.sampler.offer_msg(rec) {
                            st.emitted += 1;
                            st.sink.on_msg(&out);
                        }
                        submit
                    }
                    None => now,
                }
            } else {
                let rec = &mut obs.log.msgs[obs_val as usize];
                rec.deliver = now;
                rec.submit
            }
        } else {
            obs_val
        };
        if obs.metrics_on {
            let (c, h) = (obs.c_delivered, obs.h_latency);
            obs.metrics.inc(c, 1);
            obs.metrics.observe(h, now - since);
        }
    }

    /// Record a compute committing now: the record is complete at
    /// creation because the end instant is already scheduled.
    #[cold]
    #[inline(never)]
    fn record_compute(&mut self, p: ProcId, tag: u64, meta: (Cause, Cycles), dur: Cycles) {
        let now = self.now;
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        if obs.msg_log {
            if let Some(st) = obs.stream.as_deref_mut() {
                let id = st.compute_id(p);
                let rec = ComputeRecord {
                    id,
                    proc: p,
                    tag,
                    cause: meta.0,
                    submit: meta.1,
                    start: now,
                    end: now + dur,
                };
                if let Some(agg) = st.agg.as_mut() {
                    agg.on_compute(&rec);
                }
                if st.sampler.pass_proc(p) {
                    st.emitted += 1;
                    st.sink.on_compute(&rec);
                }
                obs.cur_compute[p as usize] = id;
            } else {
                let id = obs.log.computes.len() as u64;
                obs.log.computes.push(ComputeRecord {
                    id,
                    proc: p,
                    tag,
                    cause: meta.0,
                    submit: meta.1,
                    start: now,
                    end: now + dur,
                });
                obs.cur_compute[p as usize] = id;
            }
        }
        if obs.metrics_on {
            let c = obs.c_computes;
            obs.metrics.inc(c, 1);
        }
    }

    /// Record the barrier releasing now and return the [`Cause`] the
    /// released handlers cite. Shared by the classic `BarrierRelease`
    /// event and the sharded driver's canonical delta replay.
    #[cold]
    #[inline(never)]
    fn record_barrier_release(&mut self) -> Cause {
        let now = self.now;
        let Some(obs) = self.obs.as_deref_mut() else {
            return Cause::Start;
        };
        if !obs.msg_log {
            return Cause::Start;
        }
        let (last_proc, submit, enter, cause) = obs.barrier_last;
        if let Some(st) = obs.stream.as_deref_mut() {
            let id = st.barrier_id();
            let rec = BarrierRecord {
                id,
                last_proc,
                submit,
                enter,
                release: now,
                cause,
            };
            if let Some(agg) = st.agg.as_mut() {
                agg.on_barrier_release(&rec);
            }
            if st.sampler.pass_proc(last_proc) {
                st.emitted += 1;
                st.sink.on_barrier(&rec);
            }
            Cause::Barrier(id)
        } else {
            let id = obs.log.barriers.len() as u64;
            obs.log.barriers.push(BarrierRecord {
                id,
                last_proc,
                submit,
                enter,
                release: now,
                cause,
            });
            Cause::Barrier(id)
        }
    }

    /// Emit gauge samples for every grid instant strictly before `t`
    /// (processor/network state is piecewise constant between events, so
    /// the pre-event state is exact for those instants).
    #[cold]
    #[inline(never)]
    fn sample_gauges_to(&mut self, t: Cycles) {
        loop {
            let s = match self.obs.as_deref() {
                Some(o) if o.gauges.is_some() && o.next_sample < t => o.next_sample,
                _ => return,
            };
            // Each in-flight message occupies exactly one (level, dst)
            // entry, so the stride-flattened sum is still the total.
            let inflight_total: u64 = self.in_flight_to.iter().sum();
            let ready_cmds: u64 = self.procs.iter().map(|p| p.cmds.len() as u64).sum();
            let inbox_depth: u64 = self.procs.iter().map(|p| p.inbox.len() as u64).sum();
            let busy = self
                .procs
                .iter()
                .filter(|p| p.busy_until > s || p.stall_since.is_some())
                .count() as u64;
            let util_ppk = busy * PPK_SCALE / self.model.p as u64;
            let obs = self.obs.as_deref_mut().expect("checked above");
            let g = obs.gauges.as_ref().expect("checked above");
            let (gi, gr, gb, gu) = (g.inflight_total, g.ready_cmds, g.inbox_depth, g.util_ppk);
            obs.metrics.sample(gi, s, inflight_total);
            obs.metrics.sample(gr, s, ready_cmds);
            obs.metrics.sample(gb, s, inbox_depth);
            obs.metrics.sample(gu, s, util_ppk);
            // Per-destination gauges sum a destination's windows across
            // levels (one entry per destination regardless of depth).
            let np = self.model.p as usize;
            for d in 0..np {
                let gd = obs.gauges.as_ref().expect("checked above").per_dst[d];
                let v: u64 = self.in_flight_to[d..].iter().step_by(np).sum();
                obs.metrics.sample(gd, s, v);
            }
            obs.next_sample += obs.grid;
        }
    }

    /// Whether `p` has crash-stopped under the fault plan. Only meaningful
    /// on the `FAULTS` monomorphization.
    #[inline]
    fn is_crashed(&self, p: ProcId) -> bool {
        self.faults
            .as_deref()
            .is_some_and(|f| f.crashed[p as usize])
    }

    /// Inject a committed send through the fault layer: consult the plan,
    /// then drop the message, stretch its flight, and/or inject a trailing
    /// duplicate. Replaces the fault-free injection tail (note_injection →
    /// stash → Release/Arrive scheduling); `lat` was drawn by the caller
    /// so the engine RNG stream is identical to the fault-free path.
    #[allow(clippy::too_many_arguments)]
    fn inject_faulty<const OBS: bool, const SHARDED: bool>(
        &mut self,
        src: ProcId,
        dst: ProcId,
        tag: u32,
        data: Data,
        words: u64,
        meta: (Cause, Cycles),
        send_gate: Cycles,
        o: Cycles,
        stream: Cycles,
        lat: Cycles,
    ) {
        let now = self.now;
        let idx = src as usize;
        let d = self
            .faults
            .as_deref_mut()
            .expect("FAULTS implies a fault plan")
            .decide(src, dst, &data);
        if d.drop {
            // The message occupies both network windows for its would-be
            // flight — the sender cannot tell a dropped message from a
            // slow one — but the destination NI never sees it: no slab
            // slot, no Arrive, no NI-buffer occupancy.
            self.stats.msgs_dropped += 1;
            if SHARDED {
                self.ring_push(idx, now + stream + lat + d.delay);
            } else {
                let (lvl, _) = self.pair_level(src, dst);
                let b = lvl * self.model.p as usize;
                self.in_flight_from[b + idx] += 1;
                self.in_flight_to[b + dst as usize] += 1;
                self.stats.max_inflight_per_src = self
                    .stats
                    .max_inflight_per_src
                    .max(self.in_flight_from[b + idx]);
                self.stats.max_inflight_per_dst = self
                    .stats
                    .max_inflight_per_dst
                    .max(self.in_flight_to[b + dst as usize]);
            }
            if OBS {
                self.record_lost(src, dst, tag, words, meta, send_gate, now, now + o, false);
            }
            if !SHARDED {
                self.schedule(
                    now + stream + lat + d.delay,
                    EventKind::Release { src, dst },
                );
            }
            return;
        }
        if d.delay > 0 {
            self.stats.msgs_delayed += 1;
        }
        let copy = d.duplicate.then(|| data.clone());
        if !SHARDED {
            let (lvl, _) = self.pair_level(src, dst);
            self.note_injection(lvl, idx, dst as usize);
        }
        let msg = Message {
            src,
            dst,
            tag,
            data,
        };
        let slot = if SHARDED {
            self.stash_msg_sharded(dst, msg)
        } else {
            self.stash_msg(msg)
        };
        if OBS {
            self.record_send(
                slot,
                src,
                dst,
                tag,
                words,
                meta,
                send_gate,
                now,
                now + o,
                now + o + stream + lat + d.delay,
                false,
            );
        }
        if SHARDED {
            self.ring_push(idx, now + stream + lat + d.delay);
        } else {
            self.schedule(
                now + stream + lat + d.delay,
                EventKind::Release { src, dst },
            );
        }
        self.sched_arrive::<SHARDED>(now + o + stream + lat + d.delay, slot, src, dst);
        if let Some(data) = copy {
            // The duplicate is a full extra injection (own capacity
            // window, own lifecycle record) trailing the original by at
            // least one cycle, so duplicates also reorder.
            self.stats.msgs_duplicated += 1;
            let extra = d.delay + d.dup_delay;
            if !SHARDED {
                let (lvl, _) = self.pair_level(src, dst);
                self.note_injection(lvl, idx, dst as usize);
            }
            let msg = Message {
                src,
                dst,
                tag,
                data,
            };
            let slot = if SHARDED {
                self.stash_msg_sharded(dst, msg)
            } else {
                self.stash_msg(msg)
            };
            if OBS {
                self.record_send(
                    slot,
                    src,
                    dst,
                    tag,
                    words,
                    meta,
                    send_gate,
                    now,
                    now + o,
                    now + o + stream + lat + extra,
                    true,
                );
            }
            if SHARDED {
                self.ring_push(idx, now + stream + lat + extra);
            } else {
                self.schedule(now + stream + lat + extra, EventKind::Release { src, dst });
            }
            self.sched_arrive::<SHARDED>(now + o + stream + lat + extra, slot, src, dst);
        }
    }

    /// Crash-stop processor `p` now: no handler of `p` runs at or after
    /// this instant, queued work is abandoned, and the network interface
    /// discards everything it holds (and everything that arrives later).
    #[cold]
    #[inline(never)]
    fn apply_crash<const OBS: bool, const SHARDED: bool>(&mut self, p: ProcId) {
        let idx = p as usize;
        let faults = self
            .faults
            .as_deref_mut()
            .expect("crash events require a fault plan");
        if self.procs[idx].halted {
            // Already halted (or a duplicate crash entry): just mark the
            // interface dead so future arrivals are discarded.
            faults.crashed[idx] = true;
            return;
        }
        faults.crashed[idx] = true;
        let now = self.now;
        self.stats.procs_crashed += 1;
        if let Some(since) = self.procs[idx].stall_since.take() {
            self.procs[idx].stats.stall += now - since;
            self.span(p, since, now, Activity::Stall);
            if OBS {
                self.record_stall(now - since);
            }
        }
        // Abandon queued commands (causal metadata stays in lockstep).
        self.procs[idx].cmds.clear();
        if OBS {
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.cmd_meta[idx].clear();
            }
        }
        // An in-progress reception dies with the interface; its NI slot
        // frees (the pending RecvDone is ignored via the crash guard).
        if self.procs[idx].receiving.take().is_some() {
            if !SHARDED {
                self.outstanding_to[idx] -= 1;
            }
            self.stats.msgs_dropped += 1;
        }
        // Everything buffered in the dead interface is lost.
        while let Some(Reverse(item)) = self.procs[idx].inbox.pop() {
            if !SHARDED {
                self.outstanding_to[idx] -= 1;
            }
            self.stats.msgs_dropped += 1;
            if OBS {
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.inbox_obs.remove(&item.key);
                }
            }
        }
        // A crashed processor no longer counts toward the barrier quorum.
        let was_in_barrier = self.procs[idx].in_barrier;
        if was_in_barrier {
            self.procs[idx].in_barrier = false;
            self.barrier_count -= 1;
        }
        self.procs[idx].halted = true;
        self.procs[idx].waiting_on_src = false;
        self.alive -= 1;
        if SHARDED {
            self.bdeltas.push(BarrierDelta {
                t: now,
                proc: p,
                dcount: if was_in_barrier { -1 } else { 0 },
                dalive: -1,
                meta: None,
            });
        } else {
            self.check_barrier();
            // Freed NI slots may unblock stalled senders (whose future
            // messages will simply be discarded on arrival).
            self.wake_dst_waiters::<OBS, true>(idx);
        }
    }

    /// Run a program handler and enqueue the commands it issues; `cause`
    /// identifies the triggering event for the lifecycle log.
    fn run_handler<const OBS: bool, F>(&mut self, p: ProcId, cause: Cause, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Ctx<'_>),
    {
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        cmds.clear();
        // Temporarily detach the program so the context can borrow `self`
        // state without aliasing.
        let mut program = self.procs[p as usize]
            .program
            .take()
            .expect("handlers do not re-enter the engine");
        {
            let mut ctx = Ctx::new(self.now, p, self.model.p, &mut cmds);
            f(program.as_mut(), &mut ctx);
        }
        self.procs[p as usize].program = Some(program);
        let issued = cmds.len();
        self.procs[p as usize].cmds.extend(cmds.drain(..));
        if OBS && issued > 0 {
            self.push_meta(p, cause, issued);
        } else if OBS {
            self.note_leaf(cause);
        }
        self.cmd_scratch = cmds;
    }

    /// Tag `issued` freshly queued commands with their causal metadata.
    #[cold]
    #[inline(never)]
    fn push_meta(&mut self, p: ProcId, cause: Cause, issued: usize) {
        let now = self.now;
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.msg_log {
                let meta = &mut obs.cmd_meta[p as usize];
                for _ in 0..issued {
                    meta.push_back((cause, now));
                }
                if let Some(st) = obs.stream.as_deref_mut() {
                    if let Some(agg) = st.agg.as_mut() {
                        agg.on_push(p, cause, now, issued);
                    }
                }
            }
        }
    }

    /// A handler issued no commands: nothing will ever cite its trigger
    /// again, so the online aggregate may drop the record's components.
    #[cold]
    #[inline(never)]
    fn note_leaf(&mut self, cause: Cause) {
        if let Some(obs) = self.obs.as_deref_mut() {
            if let Some(st) = obs.stream.as_deref_mut() {
                if let Some(agg) = st.agg.as_mut() {
                    agg.on_leaf(cause);
                }
            }
        }
    }

    /// Try to make progress on processor `p` at the current time.
    ///
    /// Monomorphized over `OBS` (whether observability state exists for
    /// this run) and `FAULTS` (whether a fault plan is installed) so the
    /// disabled hot path compiles with every hook removed — the flags are
    /// `self.obs.is_some()` / `self.faults.is_some()`, fixed at
    /// [`Sim::run`].
    fn advance<const OBS: bool, const FAULTS: bool, const SHARDED: bool>(&mut self, p: ProcId) {
        let now = self.now;
        let idx = p as usize;
        if self.procs[idx].engaged || self.procs[idx].halted {
            return;
        }
        // Active-message polling: at every command boundary, an already
        // arrived message whose reception can start *now* is serviced
        // before the next command (the CM-5 communication layer polls the
        // network between operations). A capacity-stalled processor does
        // not poll — the model says it stalls.
        {
            let st = &self.procs[idx];
            if !st.waiting_on_src
                && !st.waiting_on_dst
                && st.busy_until <= now
                && st.next_recv_slot <= now
            {
                if let Some(Reverse(item)) = st.inbox.peek() {
                    if item.arrival() <= now {
                        self.start_reception::<OBS, SHARDED>(p);
                        return;
                    }
                }
            }
        }
        if let Some(cmd) = self.procs[idx].cmds.front() {
            match *cmd {
                Command::SendBulk {
                    dst, tag, words, ..
                } => {
                    let big_g = self
                        .config
                        .loggp_big_g
                        .expect("send_bulk requires SimConfig::loggp_big_g");
                    let st = &self.procs[idx];
                    let s = st.busy_until.max(st.next_send_slot);
                    if now < s {
                        self.sched::<SHARDED>(s, EventKind::Wake(p));
                        return;
                    }
                    if SHARDED {
                        // Source window via the release ring; destination
                        // admission is relaxed on the sharded path (its
                        // zero-lookahead coupling is what lanes remove —
                        // see `crate::shard`).
                        if self.config.enforce_capacity && !self.ring_admit(idx, now) {
                            let wake = self.rings[idx][0];
                            let st = &mut self.procs[idx];
                            st.stall_since.get_or_insert(now);
                            st.waiting_on_src = true;
                            self.sched::<SHARDED>(wake, EventKind::Wake(p));
                            return;
                        }
                    } else {
                        let (lvl, cap) = self.pair_level(p, dst);
                        let b = lvl * self.model.p as usize;
                        if self.in_flight_from[b + idx] >= cap {
                            let st = &mut self.procs[idx];
                            st.stall_since.get_or_insert(now);
                            st.waiting_on_src = true;
                            return;
                        }
                        if self.in_flight_to[b + dst as usize] >= cap
                            || self.outstanding_to[dst as usize] >= self.max_outstanding
                        {
                            let st = &mut self.procs[idx];
                            st.stall_since.get_or_insert(now);
                            if !st.waiting_on_dst {
                                st.waiting_on_dst = true;
                                self.dst_waiters[dst as usize].push_back(p);
                            }
                            return;
                        }
                    }
                    // Committed: dequeue by value so the payload moves
                    // instead of cloning.
                    let data = match self.procs[idx].cmds.pop_front() {
                        Some(Command::SendBulk { data, .. }) => data,
                        _ => unreachable!("front of queue checked above"),
                    };
                    let meta = if OBS {
                        self.pop_meta(idx)
                    } else {
                        (Cause::Start, now)
                    };
                    let st = &mut self.procs[idx];
                    st.waiting_on_src = false;
                    let send_gate = st.next_send_slot;
                    if let Some(since) = st.stall_since.take() {
                        st.stats.stall += now - since;
                        self.span(p, since, now, Activity::Stall);
                        if OBS {
                            self.record_stall(now - since);
                        }
                    }
                    let (pl, o, g) = self.pair_log(p, dst);
                    // LogGP semantics: the processor pays only `o`; the
                    // interface streams the remaining words at `G` each,
                    // blocking the *next* injection until done.
                    let stream = (words - 1) * big_g;
                    let st = &mut self.procs[idx];
                    st.busy_until = now + o;
                    st.next_send_slot = (now + g).max(now + o + stream);
                    st.stats.send_overhead += o;
                    st.stats.msgs_sent += 1;
                    self.span(p, now, now + o, Activity::SendOverhead);
                    if FAULTS {
                        let lat = self.draw_latency_on::<SHARDED>(p, pl);
                        self.inject_faulty::<OBS, SHARDED>(
                            p, dst, tag, data, words, meta, send_gate, o, stream, lat,
                        );
                    } else {
                        if !SHARDED {
                            let (lvl, _) = self.pair_level(p, dst);
                            self.note_injection(lvl, idx, dst as usize);
                        }
                        let lat = self.draw_latency_on::<SHARDED>(p, pl);
                        let msg = Message {
                            src: p,
                            dst,
                            tag,
                            data,
                        };
                        let slot = if SHARDED {
                            self.stash_msg_sharded(dst, msg)
                        } else {
                            self.stash_msg(msg)
                        };
                        if OBS {
                            self.record_send(
                                slot,
                                p,
                                dst,
                                tag,
                                words,
                                meta,
                                send_gate,
                                now,
                                now + o,
                                now + o + stream + lat,
                                false,
                            );
                        }
                        // The capacity window mirrors the small-message
                        // rule: it covers the message's network occupancy
                        // (streaming plus flight), not the sender's
                        // overhead.
                        if SHARDED {
                            self.ring_push(idx, now + stream + lat);
                        } else {
                            self.schedule(now + stream + lat, EventKind::Release { src: p, dst });
                        }
                        self.sched_arrive::<SHARDED>(now + o + stream + lat, slot, p, dst);
                    }
                    self.finish_send::<SHARDED>(p);
                }
                Command::Send { dst, tag, .. } => {
                    let st = &self.procs[idx];
                    let s = st.busy_until.max(st.next_send_slot);
                    if now < s {
                        self.sched::<SHARDED>(s, EventKind::Wake(p));
                        return;
                    }
                    if SHARDED {
                        // Source window via the release ring; destination
                        // admission is relaxed on the sharded path (see
                        // `crate::shard`).
                        if self.config.enforce_capacity && !self.ring_admit(idx, now) {
                            let wake = self.rings[idx][0];
                            let st = &mut self.procs[idx];
                            st.stall_since.get_or_insert(now);
                            st.waiting_on_src = true;
                            self.sched::<SHARDED>(wake, EventKind::Wake(p));
                            return;
                        }
                    } else {
                        let (lvl, cap) = self.pair_level(p, dst);
                        let b = lvl * self.model.p as usize;
                        if self.in_flight_from[b + idx] >= cap {
                            // Stall until one of our own messages arrives.
                            let st = &mut self.procs[idx];
                            st.stall_since.get_or_insert(now);
                            st.waiting_on_src = true;
                            return;
                        }
                        if self.in_flight_to[b + dst as usize] >= cap
                            || self.outstanding_to[dst as usize] >= self.max_outstanding
                        {
                            let st = &mut self.procs[idx];
                            st.stall_since.get_or_insert(now);
                            if !st.waiting_on_dst {
                                st.waiting_on_dst = true;
                                self.dst_waiters[dst as usize].push_back(p);
                            }
                            return;
                        }
                    }
                    // Proceed with the send at `now`: dequeue by value so
                    // the payload moves instead of cloning.
                    let data = match self.procs[idx].cmds.pop_front() {
                        Some(Command::Send { data, .. }) => data,
                        _ => unreachable!("front of queue checked above"),
                    };
                    let meta = if OBS {
                        self.pop_meta(idx)
                    } else {
                        (Cause::Start, now)
                    };
                    let st = &mut self.procs[idx];
                    st.waiting_on_src = false;
                    let send_gate = st.next_send_slot;
                    if let Some(since) = st.stall_since.take() {
                        st.stats.stall += now - since;
                        self.span(p, since, now, Activity::Stall);
                        if OBS {
                            self.record_stall(now - since);
                        }
                    }
                    let (pl, o, g) = self.pair_log(p, dst);
                    let st = &mut self.procs[idx];
                    st.busy_until = now + o;
                    st.next_send_slot = now + g;
                    st.stats.send_overhead += o;
                    st.stats.msgs_sent += 1;
                    self.span(p, now, now + o, Activity::SendOverhead);
                    if FAULTS {
                        let lat = self.draw_latency_on::<SHARDED>(p, pl);
                        self.inject_faulty::<OBS, SHARDED>(
                            p, dst, tag, data, 1, meta, send_gate, o, 0, lat,
                        );
                    } else {
                        if !SHARDED {
                            let (lvl, _) = self.pair_level(p, dst);
                            self.note_injection(lvl, idx, dst as usize);
                        }
                        let lat = self.draw_latency_on::<SHARDED>(p, pl);
                        let msg = Message {
                            src: p,
                            dst,
                            tag,
                            data,
                        };
                        let slot = if SHARDED {
                            self.stash_msg_sharded(dst, msg)
                        } else {
                            self.stash_msg(msg)
                        };
                        if OBS {
                            self.record_send(
                                slot,
                                p,
                                dst,
                                tag,
                                1,
                                meta,
                                send_gate,
                                now,
                                now + o,
                                now + o + lat,
                                false,
                            );
                        }
                        if SHARDED {
                            self.ring_push(idx, now + lat);
                        } else {
                            self.schedule(now + lat, EventKind::Release { src: p, dst });
                        }
                        self.sched_arrive::<SHARDED>(now + o + lat, slot, p, dst);
                    }
                    self.finish_send::<SHARDED>(p);
                }
                Command::Compute { cycles, tag } => {
                    if now < self.procs[idx].busy_until {
                        let t = self.procs[idx].busy_until;
                        self.sched::<SHARDED>(t, EventKind::Wake(p));
                        return;
                    }
                    self.procs[idx].cmds.pop_front();
                    let meta = if OBS {
                        self.pop_meta(idx)
                    } else {
                        (Cause::Start, now)
                    };
                    let dur = self.draw_compute_on::<SHARDED>(p, cycles);
                    let st = &mut self.procs[idx];
                    st.busy_until = now + dur;
                    st.stats.compute += dur;
                    st.engaged = true;
                    self.span(p, now, now + dur, Activity::Compute);
                    if OBS {
                        self.record_compute(p, tag, meta, dur);
                    }
                    self.sched::<SHARDED>(now + dur, EventKind::ComputeDone(p, tag));
                }
                Command::Barrier => {
                    if now < self.procs[idx].busy_until {
                        let t = self.procs[idx].busy_until;
                        self.sched::<SHARDED>(t, EventKind::Wake(p));
                        return;
                    }
                    self.procs[idx].cmds.pop_front();
                    let meta = if OBS {
                        self.pop_meta(idx)
                    } else {
                        (Cause::Start, now)
                    };
                    let st = &mut self.procs[idx];
                    st.in_barrier = true;
                    st.barrier_entered_at = now;
                    st.engaged = true;
                    self.barrier_count += 1;
                    if let Some(obs) = self.obs.as_deref_mut().filter(|_| OBS) {
                        if obs.msg_log {
                            obs.barrier_last = (p, meta.1, now, meta.0);
                            if let Some(st) = obs.stream.as_deref_mut() {
                                if let Some(agg) = st.agg.as_mut() {
                                    agg.on_barrier_enter(p, meta.1);
                                }
                            }
                        }
                        if obs.metrics_on {
                            let c = obs.c_barrier_entries;
                            obs.metrics.inc(c, 1);
                        }
                    }
                    if SHARDED {
                        // Completion is decided by the window driver's
                        // canonical delta replay, not mid-pass.
                        self.bdeltas.push(BarrierDelta {
                            t: now,
                            proc: p,
                            dcount: 1,
                            dalive: 0,
                            meta: Some(meta),
                        });
                    } else {
                        self.check_barrier();
                    }
                }
                Command::Timer { cycles, tag } => {
                    // Arming is free: no overhead, no gap, no busy wait.
                    self.procs[idx].cmds.pop_front();
                    let meta = if OBS {
                        self.pop_meta(idx)
                    } else {
                        (Cause::Start, now)
                    };
                    let seq = self.sched::<SHARDED>(now + cycles, EventKind::TimerFire(p, tag));
                    if OBS {
                        self.record_timer(p, tag, meta, now + cycles, seq);
                    }
                    // Keep draining the command queue behind the timer.
                    self.advance::<OBS, FAULTS, SHARDED>(p);
                }
                Command::Halt => {
                    self.procs[idx].cmds.pop_front();
                    if OBS {
                        self.pop_meta(idx);
                    }
                    self.procs[idx].halted = true;
                    self.alive -= 1;
                    if SHARDED {
                        self.bdeltas.push(BarrierDelta {
                            t: now,
                            proc: p,
                            dcount: 0,
                            dalive: -1,
                            meta: None,
                        });
                    } else {
                        self.check_barrier();
                    }
                }
            }
            return;
        }
        // No pending commands: service the network (waiting for the
        // earliest reception opportunity if it is in the future).
        let st = &self.procs[idx];
        if let Some(Reverse(item)) = st.inbox.peek() {
            let r = st.busy_until.max(st.next_recv_slot).max(item.arrival());
            if now < r {
                self.sched::<SHARDED>(r, EventKind::Wake(p));
                return;
            }
            self.start_reception::<OBS, SHARDED>(p);
        }
        // Otherwise: idle until something arrives.
    }

    /// Begin receiving the earliest-arrived inbox message at the current
    /// time. Caller guarantees the processor is free and the gap allows.
    fn start_reception<const OBS: bool, const SHARDED: bool>(&mut self, p: ProcId) {
        let now = self.now;
        let idx = p as usize;
        let Reverse(item) = self.procs[idx].inbox.pop().expect("inbox non-empty");
        debug_assert!(item.arrival() <= now);
        let (_, o, g) = self.pair_log(item.msg.src, p);
        // A capacity-stalled send may have been woken and then preempted
        // by this reception; close its stall span so stall and reception
        // time stay disjoint in the accounting (the send re-opens it if
        // still blocked).
        if let Some(since) = self.procs[idx].stall_since.take() {
            self.procs[idx].stats.stall += now - since;
            self.span(p, since, now, Activity::Stall);
            if OBS {
                self.record_stall(now - since);
            }
        }
        let st = &mut self.procs[idx];
        let recv_gate = st.next_recv_slot;
        st.next_recv_slot = now + g;
        st.busy_until = now + o;
        st.stats.recv_overhead += o;
        st.receiving = Some(item.msg);
        st.engaged = true;
        if OBS {
            self.note_reception(p, item.key, recv_gate);
        }
        self.span(p, now, now + o, Activity::RecvOverhead);
        self.sched::<SHARDED>(now + o, EventKind::RecvDone(p));
    }

    /// Close out an injection that just occupied `[now, busy_until)`.
    ///
    /// A `SendDone` completion event only exists to re-examine the sender
    /// once its overhead ends. When the sender has no queued commands and
    /// an empty inbox, that re-examination is a no-op — `busy_until`
    /// already gates later polling and sends — so the event is elided
    /// entirely (a quarter of all events in request-reply traffic). Any
    /// message arriving during the overhead window finds the processor
    /// un-engaged and schedules its own wake at `busy_until`.
    #[inline]
    fn finish_send<const SHARDED: bool>(&mut self, p: ProcId) {
        let st = &self.procs[p as usize];
        if st.cmds.is_empty() && st.inbox.is_empty() {
            return;
        }
        let done = st.busy_until;
        self.procs[p as usize].engaged = true;
        self.sched::<SHARDED>(done, EventKind::SendDone(p));
    }

    /// Wake every sender queued on destination `dst`'s capacity list
    /// (FIFO; each re-checks its bound and re-queues if still blocked).
    ///
    /// Every waiter must be woken even when the window is already full
    /// again: a woken sender's `advance` polls its own inbox before
    /// retrying the send, and that reception progress is what unwinds
    /// cyclic stalls (two processors each stalled sending to the other
    /// drain their inboxes only through this path). Uses the reusable
    /// scratch buffer so the wake never allocates — `advance` may push a
    /// still-blocked sender back onto the very list being drained.
    fn wake_dst_waiters<const OBS: bool, const FAULTS: bool>(&mut self, dst: usize) {
        if self.dst_waiters[dst].is_empty() {
            return;
        }
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        waiters.extend(self.dst_waiters[dst].drain(..));
        for &w in &waiters {
            self.procs[w as usize].waiting_on_dst = false;
            self.advance::<OBS, FAULTS, false>(w);
        }
        waiters.clear();
        self.waiter_scratch = waiters;
    }

    fn check_barrier(&mut self) {
        if self.alive > 0 && self.barrier_count == self.alive {
            self.schedule(
                self.now + self.config.barrier_cost,
                EventKind::BarrierRelease,
            );
        }
    }

    /// Run to quiescence. Consumes the machine and returns statistics and
    /// (if configured) the activity trace.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.run_counting_reallocs().map(|(result, _)| result)
    }

    /// [`Sim::run`], additionally returning the arena-growth count (see
    /// [`Sim::arena_reallocs`]; always 0 in release builds, where the
    /// counter is compiled out). The pre-sizing pin tests use this to
    /// assert that construction-time arena capacities stay exact.
    pub fn run_counting_reallocs(mut self) -> Result<(SimResult, u64), SimError> {
        // Pick the monomorphization once: `self.obs` and `self.faults`
        // are installed before the run and never change during it, so
        // their presence is invariant across the whole event loop.
        //
        // `shards >= 2` selects the windowed lane engine (`crate::shard`);
        // `0` and `1` run the classic single-heap engine unchanged. Gauge
        // sampling (`metrics_grid > 0`) needs globally time-ordered event
        // processing, which windowed lanes deliberately give up, so those
        // runs stay on the classic engine.
        // Canonical keys budget 20 bits for `proc + 1`, which covers the
        // million-processor target with room to spare; anything larger
        // falls back to the classic engine rather than overflowing.
        let sharded = self.config.shards >= 2
            && self.config.metrics_grid == 0
            && self.model.p >= 2
            && (self.model.p as u64) < (1 << 20);
        // Tell the streaming layer which record-id scheme to use before
        // the first record is allocated: dense (classic — identical to
        // retained-log ids) or structured per-processor (sharded —
        // lane-count-invariant).
        if let Some(obs) = self.obs.as_deref_mut() {
            if let Some(st) = obs.stream.as_deref_mut() {
                st.sharded = sharded;
                if sharded {
                    st.sctr = Off::from(vec![0; self.model.p as usize]);
                }
            }
        }
        // The sharded engine's capacity model admits every arrival
        // immediately (stalling a remote sender within a lookahead window
        // would need cross-lane backpressure), so a capacity-enforcing
        // config is silently relaxed there. Surface that: a vitals
        // counter on every such run, plus a one-time structured warning.
        if sharded && self.config.enforce_capacity {
            self.v_capacity_relaxed = 1;
            static CAPACITY_WARN: std::sync::Once = std::sync::Once::new();
            CAPACITY_WARN.call_once(|| {
                eprintln!(
                    "logp-sim: warning: enforce_capacity is not implemented by the sharded \
                     engine (shards >= 2): the network capacity bound is relaxed for this run \
                     (reported as vitals_capacity_relaxed = 1; use shards = 0 to enforce it)"
                );
            });
        }
        let workers = self.config.workers;
        let wall_start = std::time::Instant::now();
        match (self.obs.is_some(), self.faults.is_some(), sharded) {
            (false, false, false) => self.drive::<false, false>()?,
            (false, true, false) => self.drive::<false, true>()?,
            (true, false, false) => self.drive::<true, false>()?,
            (true, true, false) => self.drive::<true, true>()?,
            (false, false, true) if workers >= 1 => self.drive_parallel::<false, false>(workers)?,
            (false, true, true) if workers >= 1 => self.drive_parallel::<false, true>(workers)?,
            (true, false, true) if workers >= 1 => self.drive_parallel::<true, false>(workers)?,
            (true, true, true) if workers >= 1 => self.drive_parallel::<true, true>(workers)?,
            (false, false, true) => self.drive_sharded::<false, false>()?,
            (false, true, true) => self.drive_sharded::<false, true>()?,
            (true, false, true) => self.drive_sharded::<true, false>()?,
            (true, true, true) => self.drive_sharded::<true, true>()?,
        }
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        // Heap pops are time-ordered, so the clock is monotone and the
        // final `now` is the completion time — no per-event max needed.
        self.stats.completion = self.now;
        // Quiescence with unexecuted work is a deadlock, not a normal
        // end: a command queue that never drained (e.g. a send stalled on
        // a destination whose receiver stopped draining) or a barrier
        // that never released means the program did not complete.
        let stuck: Vec<ProcId> = (0..self.model.p)
            .filter(|&p| {
                let st = &self.procs[p as usize];
                !st.halted && (!st.cmds.is_empty() || st.in_barrier)
            })
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck });
        }
        for p in 0..self.model.p as usize {
            self.stats.procs[p] = self.procs[p].stats;
        }
        // Close the gauge series with the end-of-run state (one sample at
        // the completion instant).
        if self.obs.is_some() {
            self.sample_gauges_to(self.now + 1);
        }
        let mut aggregate = None;
        let mut sink_err = None;
        let (obs_log, metrics) = match self.obs.take() {
            Some(mut o) => {
                if let Some(st) = o.stream.take() {
                    match Self::finish_stream(*st) {
                        Ok(agg) => aggregate = agg,
                        Err(e) => sink_err = Some(e),
                    }
                }
                (o.log, o.metrics)
            }
            None => (ObsLog::default(), MetricsRegistry::default()),
        };
        if let Some(e) = sink_err {
            return Err(SimError::Sink(e));
        }
        #[cfg(debug_assertions)]
        let reallocs = self.arena_reallocs;
        #[cfg(not(debug_assertions))]
        let reallocs = 0u64;
        let vitals = crate::metrics::EngineVitals {
            engine: if sharded { "sharded" } else { "classic" },
            wall_ns,
            events: self.stats.events,
            // The parallel driver leaves `self.lanes` empty (lane state
            // lives in the per-lane Sims), so fall back to the per-lane
            // event counts it merged.
            lanes: if sharded {
                self.lanes.len().max(self.v_lane_events.len()) as u32
            } else {
                1
            },
            lane_events: std::mem::take(&mut self.v_lane_events),
            windows: self.v_windows,
            fast_forwards: self.v_fast_forwards,
            bucket_depth_max: self.v_bucket_max,
            far_spills: self.v_far_spills,
            arena_reallocs: reallocs,
            workers: self.v_workers,
            lane_wall_ns: std::mem::take(&mut self.v_lane_wall_ns),
            barrier_wait_ns: self.v_barrier_wait_ns,
            capacity_relaxed: self.v_capacity_relaxed,
        };
        Ok((
            SimResult {
                stats: self.stats,
                trace: self.trace,
                obs: obs_log,
                metrics,
                aggregate,
                vitals,
            },
            reallocs,
        ))
    }

    /// Close out a streaming run: emit the records the run left
    /// incomplete (undelivered messages after crashes or drops, timers
    /// cancelled by halt) sorted by id, release deferred sampling
    /// selections, finalize the aggregate, and flush the sink.
    fn finish_stream(mut st: StreamState) -> Result<Option<crate::critpath::ObsAggregate>, String> {
        let mut msgs: Vec<MsgRecord> = std::mem::take(&mut st.inflight)
            .into_values()
            .map(|(m, _)| m)
            .collect();
        msgs.sort_unstable_by_key(|m| m.id);
        for m in msgs {
            if let Some(out) = st.sampler.offer_msg(m) {
                st.emitted += 1;
                st.sink.on_msg(&out);
            }
        }
        let mut timers: Vec<TimerRecord> = std::mem::take(&mut st.timers_live)
            .into_values()
            .map(|(t, _)| t)
            .collect();
        timers.sort_unstable_by_key(|t| t.id);
        for t in timers {
            if st.sampler.pass_proc(t.proc) {
                st.emitted += 1;
                st.sink.on_timer(&t);
            }
        }
        for m in st.sampler.drain() {
            st.emitted += 1;
            st.sink.on_msg(&m);
        }
        let agg = st.agg.take().map(|a| a.finish(st.emitted));
        st.sink.finish()?;
        Ok(agg)
    }

    /// The event loop, monomorphized over observability. With `OBS`
    /// false every hook below folds away and the loop compiles to the
    /// uninstrumented hot path. `inline(never)` keeps the two
    /// monomorphizations as separate compact functions instead of one
    /// merged body inside [`Sim::run`].
    #[inline(never)]
    fn drive<const OBS: bool, const FAULTS: bool>(&mut self) -> Result<(), SimError> {
        if FAULTS {
            // Schedule the crash plan before anything else: a cycle-0
            // crash suppresses even `on_start`, and later crashes get the
            // lowest sequence numbers of their cycle so they order before
            // same-cycle arrivals.
            let crashes = self
                .faults
                .as_deref()
                .expect("FAULTS implies a fault plan")
                .plan
                .crashes
                .clone();
            for (p, t) in crashes {
                if t == 0 {
                    self.apply_crash::<OBS, false>(p);
                } else {
                    self.schedule(t, EventKind::Crash(p));
                }
            }
        }
        // Start handlers fire at time 0 in processor-id order.
        for p in 0..self.model.p {
            if FAULTS && self.procs[p as usize].halted {
                continue;
            }
            self.run_handler::<OBS, _>(p, Cause::Start, |prog, ctx| prog.on_start(ctx));
        }
        for p in 0..self.model.p {
            self.advance::<OBS, FAULTS, false>(p);
        }
        while let Some((key, kind)) = self.heap.pop() {
            self.stats.events += 1;
            if self.stats.events > self.config.max_events {
                return Err(SimError::MaxEventsExceeded {
                    limit: self.config.max_events,
                });
            }
            debug_assert!(key_time(key) >= self.now, "time must not run backwards");
            if OBS {
                self.sample_gauges_to(key_time(key));
            }
            self.now = key_time(key);
            match kind {
                EventKind::Release { src, dst } => {
                    let (lvl, _) = self.pair_level(src, dst);
                    let b = lvl * self.model.p as usize;
                    self.in_flight_from[b + src as usize] -= 1;
                    self.in_flight_to[b + dst as usize] -= 1;
                    // Wake capacity waiters of this destination (FIFO; each
                    // re-checks and re-queues if still blocked).
                    self.wake_dst_waiters::<OBS, FAULTS>(dst as usize);
                    // The source may have been stalled on its own window.
                    if self.procs[src as usize].waiting_on_src {
                        self.procs[src as usize].waiting_on_src = false;
                        self.advance::<OBS, FAULTS, false>(src);
                    }
                }
                EventKind::Arrive(slot) => {
                    let msg = self.unstash_msg(slot);
                    let dst = msg.dst;
                    if FAULTS && self.is_crashed(dst) {
                        // Dead interface: the message is lost, but its
                        // NI-buffer slot frees for blocked senders.
                        self.stats.msgs_dropped += 1;
                        self.outstanding_to[dst as usize] -= 1;
                        self.wake_dst_waiters::<OBS, FAULTS>(dst as usize);
                        continue;
                    }
                    self.stats.total_msgs += 1;
                    self.seq += 1;
                    let key = InboxItem::key(self.now, self.seq);
                    if OBS {
                        self.note_arrival(dst, slot, key);
                    }
                    self.procs[dst as usize]
                        .inbox
                        .push(Reverse(InboxItem { key, msg }));
                    self.advance::<OBS, FAULTS, false>(dst);
                }
                EventKind::SendDone(p) => {
                    self.procs[p as usize].engaged = false;
                    self.advance::<OBS, FAULTS, false>(p);
                }
                EventKind::ComputeDone(p, tag) => {
                    if FAULTS && self.is_crashed(p) {
                        continue;
                    }
                    self.procs[p as usize].engaged = false;
                    let cause = if OBS {
                        match self.obs.as_deref() {
                            Some(o) if o.msg_log => Cause::Compute(o.cur_compute[p as usize]),
                            _ => Cause::Start,
                        }
                    } else {
                        Cause::Start
                    };
                    self.run_handler::<OBS, _>(p, cause, |prog, ctx| {
                        prog.on_compute_done(tag, ctx)
                    });
                    self.advance::<OBS, FAULTS, false>(p);
                }
                EventKind::RecvDone(p) => {
                    if FAULTS && self.is_crashed(p) {
                        // The reception died with the processor; its NI
                        // slot was freed by the crash cleanup.
                        continue;
                    }
                    let st = &mut self.procs[p as usize];
                    st.engaged = false;
                    st.stats.msgs_recvd += 1;
                    let msg = st.receiving.take().expect("a reception was in progress");
                    // The NI buffer slot frees: senders blocked on the
                    // outstanding bound may proceed.
                    self.outstanding_to[p as usize] -= 1;
                    let cause = if OBS {
                        match self.obs.as_deref() {
                            Some(o) => {
                                let obs_val = o.recv_obs[p as usize];
                                let log = o.msg_log;
                                self.record_delivery(obs_val);
                                if log {
                                    Cause::Msg(obs_val)
                                } else {
                                    Cause::Start
                                }
                            }
                            None => Cause::Start,
                        }
                    } else {
                        Cause::Start
                    };
                    self.wake_dst_waiters::<OBS, FAULTS>(p as usize);
                    self.run_handler::<OBS, _>(p, cause, |prog, ctx| prog.on_message(&msg, ctx));
                    self.advance::<OBS, FAULTS, false>(p);
                }
                EventKind::BarrierRelease => {
                    self.barrier_count = 0;
                    let bcause = if OBS {
                        self.record_barrier_release()
                    } else {
                        Cause::Start
                    };
                    let mut released = std::mem::take(&mut self.released_scratch);
                    released
                        .extend((0..self.model.p).filter(|&p| self.procs[p as usize].in_barrier));
                    for &p in &released {
                        let st = &mut self.procs[p as usize];
                        st.in_barrier = false;
                        st.engaged = false;
                        st.busy_until = self.now;
                        let entered = st.barrier_entered_at;
                        st.stats.barrier_wait += self.now - entered;
                        self.span(p, entered, self.now, Activity::Barrier);
                    }
                    for &p in &released {
                        self.run_handler::<OBS, _>(p, bcause, |prog, ctx| {
                            prog.on_barrier_release(ctx)
                        });
                    }
                    for &p in &released {
                        self.advance::<OBS, FAULTS, false>(p);
                    }
                    released.clear();
                    self.released_scratch = released;
                }
                EventKind::TimerFire(p, tag) => {
                    // Timers die with their processor: a halted or
                    // crashed processor never observes the fire.
                    if self.procs[p as usize].halted {
                        continue;
                    }
                    let cause = if OBS {
                        self.timer_cause(key)
                    } else {
                        Cause::Start
                    };
                    self.run_handler::<OBS, _>(p, cause, |prog, ctx| prog.on_timer(tag, ctx));
                    self.advance::<OBS, FAULTS, false>(p);
                }
                EventKind::Crash(p) => {
                    debug_assert!(FAULTS, "crash events only exist under a fault plan");
                    self.apply_crash::<OBS, false>(p);
                }
                EventKind::Wake(p) => {
                    self.advance::<OBS, FAULTS, false>(p);
                }
            }
        }
        Ok(())
    }
}
