//! The discrete-event engine implementing LogP execution semantics.
//!
//! Normative timing rules (calibrated against the paper's Figure 3; see
//! DESIGN.md):
//!
//! * a send requested at local time `t` starts at
//!   `s = max(t, last_send_start + g)` provided the capacity constraint
//!   admits it, occupies the processor during `[s, s+o)`, and the message
//!   arrives at `s + o + L'` with `L - jitter <= L' <= L`;
//! * at most `⌈L/g⌉` messages may be in transit from any processor or to
//!   any processor; a send that would exceed either bound stalls the
//!   sender (busy, accounted as stall) until an arrival frees a slot;
//! * a reception starts at `r = max(arrival, processor_free,
//!   last_recv_start + g)`, occupies `[r, r+o)`, and the program handler
//!   observes the message at `r + o`;
//! * commands issued by a program execute in FIFO order; receptions are
//!   serviced only while the command queue is empty (the processor is a
//!   single sequential execution unit);
//! * `compute(c)` occupies the processor for exactly `c` cycles (perturbed
//!   if drift is configured).
//!
//! The engine is single-threaded and bit-deterministic for a given
//! `(programs, model, config)` triple: ties in the event heap are broken
//! by (class, sequence number).

use crate::config::SimConfig;
use crate::message::Message;
use crate::process::{Command, Ctx, Process};
use crate::trace::{Activity, ProcStats, SimStats, Span, Trace};
use logp_core::{Cycles, LogP, ProcId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Errors terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted (runaway program).
    MaxEventsExceeded { limit: u64 },
    /// The machine went quiescent while processors still had unexecuted
    /// commands or were waiting in a barrier that can never release.
    Deadlock { stuck: Vec<ProcId> },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MaxEventsExceeded { limit } => {
                write!(f, "simulation exceeded the event budget of {limit}")
            }
            SimError::Deadlock { stuck } => {
                write!(f, "simulation deadlocked with processors {stuck:?} still holding work")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a completed run.
#[derive(Debug, Default)]
pub struct SimResult {
    pub stats: SimStats,
    pub trace: Trace,
}

#[derive(Debug)]
enum EventKind {
    /// A message leaves the capacity window: the model counts a message as
    /// "in transit" for exactly its network flight time `L'` starting at
    /// injection, so per-endpoint occupancy of a stall-free `g`-spaced
    /// stream is exactly `⌈L/g⌉` — the model's capacity.
    Release { src: usize, dst: usize },
    /// A message reaches its destination's network interface.
    Arrive(Message),
    /// Send overhead complete; the sender may proceed.
    SendDone(ProcId),
    /// A `compute` command finished.
    ComputeDone(ProcId, u64),
    /// Reception overhead complete; deliver to the program.
    RecvDone(ProcId),
    /// All processors entered the barrier; release them.
    BarrierRelease,
    /// Re-examine a processor that deferred progress to this time.
    Wake(ProcId),
}

impl EventKind {
    /// Same-timestamp ordering class: arrivals first (so capacity slots
    /// freed at time `t` are visible to sends attempted at `t`), then
    /// completions, then wakes.
    fn class(&self) -> u8 {
        match self {
            EventKind::Release { .. } | EventKind::Arrive(_) => 0,
            EventKind::SendDone(_)
            | EventKind::ComputeDone(..)
            | EventKind::RecvDone(_)
            | EventKind::BarrierRelease => 1,
            EventKind::Wake(_) => 2,
        }
    }
}

struct Event {
    time: Cycles,
    class: u8,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.class, self.seq) == (other.time, other.class, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.class, self.seq).cmp(&(other.time, other.class, other.seq))
    }
}

#[derive(Debug)]
struct InboxItem {
    arrival: Cycles,
    seq: u64,
    msg: Message,
}

impl PartialEq for InboxItem {
    fn eq(&self, other: &Self) -> bool {
        (self.arrival, self.seq) == (other.arrival, other.seq)
    }
}
impl Eq for InboxItem {}
impl PartialOrd for InboxItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InboxItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
    }
}

struct ProcState {
    program: Box<dyn Process>,
    cmds: VecDeque<Command>,
    inbox: BinaryHeap<Reverse<InboxItem>>,
    /// Time the processor becomes free.
    busy_until: Cycles,
    /// Earliest start of the next send (gap constraint).
    next_send_slot: Cycles,
    /// Earliest start of the next reception (gap constraint).
    next_recv_slot: Cycles,
    /// An engine event for this processor is outstanding.
    engaged: bool,
    halted: bool,
    in_barrier: bool,
    barrier_entered_at: Cycles,
    /// Queued in a destination's capacity waiting list.
    waiting_on_dst: bool,
    /// Blocked on own source-side capacity.
    waiting_on_src: bool,
    /// When the current capacity stall began.
    stall_since: Option<Cycles>,
    /// Message currently paying reception overhead.
    receiving: Option<Message>,
    stats: ProcStats,
}

impl ProcState {
    fn new(program: Box<dyn Process>) -> Self {
        ProcState {
            program,
            cmds: VecDeque::new(),
            inbox: BinaryHeap::new(),
            busy_until: 0,
            next_send_slot: 0,
            next_recv_slot: 0,
            engaged: false,
            halted: false,
            in_barrier: false,
            barrier_entered_at: 0,
            waiting_on_dst: false,
            waiting_on_src: false,
            stall_since: None,
            receiving: None,
            stats: ProcStats::default(),
        }
    }
}

/// A configured LogP machine with programs loaded on its processors.
pub struct Sim {
    model: LogP,
    config: SimConfig,
    procs: Vec<ProcState>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Cycles,
    in_flight_from: Vec<u64>,
    in_flight_to: Vec<u64>,
    /// Messages injected toward each destination whose reception has not
    /// yet completed (network window + NI buffer occupancy).
    outstanding_to: Vec<u64>,
    dst_waiters: Vec<VecDeque<ProcId>>,
    rng: SmallRng,
    /// Per-processor systematic compute scale in parts-per-1024 (1024 =
    /// nominal speed); drawn once at construction from `proc_skew_ppk`.
    proc_scale: Vec<i64>,
    trace: Trace,
    stats: SimStats,
    barrier_count: u32,
    alive: u32,
    capacity: u64,
    /// Reusable command buffer for handler invocations (hot path: one
    /// handler per event; reusing the allocation keeps the per-event cost
    /// allocation-free).
    cmd_scratch: Vec<Command>,
    /// Max admissible outstanding messages per destination:
    /// capacity (network window) + NI buffer.
    max_outstanding: u64,
}

impl Sim {
    /// Create a machine; every processor initially runs
    /// [`crate::process::Passive`].
    pub fn new(model: LogP, config: SimConfig) -> Self {
        let p = model.p as usize;
        let capacity = if config.enforce_capacity {
            model.capacity()
        } else {
            u64::MAX
        };
        let ni_buffer = if config.enforce_capacity {
            config.ni_buffer.unwrap_or_else(|| model.capacity() + 2)
        } else {
            u64::MAX
        };
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let skew = config.proc_skew_ppk as i64;
        let proc_scale: Vec<i64> = (0..p)
            .map(|_| 1024 + if skew == 0 { 0 } else { rng.gen_range(-skew..=skew) })
            .collect();
        Sim {
            model,
            procs: (0..p)
                .map(|_| ProcState::new(Box::new(crate::process::Passive)))
                .collect(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            in_flight_from: vec![0; p],
            in_flight_to: vec![0; p],
            outstanding_to: vec![0; p],
            dst_waiters: (0..p).map(|_| VecDeque::new()).collect(),
            rng,
            proc_scale,
            trace: Trace::default(),
            stats: SimStats { procs: vec![ProcStats::default(); p], ..Default::default() },
            barrier_count: 0,
            alive: model.p,
            capacity,
            cmd_scratch: Vec::new(),
            max_outstanding: capacity.saturating_add(ni_buffer),
            config,
        }
    }

    /// The machine model being simulated.
    pub fn model(&self) -> &LogP {
        &self.model
    }

    /// Install a program on processor `p`.
    pub fn set_process(&mut self, p: ProcId, program: Box<dyn Process>) {
        self.procs[p as usize].program = program;
    }

    /// Install the programs produced by `f(p)` on every processor.
    pub fn set_all<F>(&mut self, mut f: F)
    where
        F: FnMut(ProcId) -> Box<dyn Process>,
    {
        for p in 0..self.model.p {
            self.set_process(p, f(p));
        }
    }

    fn schedule(&mut self, time: Cycles, kind: EventKind) {
        let class = kind.class();
        self.seq += 1;
        self.heap.push(Reverse(Event { time, class, seq: self.seq, kind }));
    }

    fn draw_latency(&mut self) -> Cycles {
        let j = self.config.latency_jitter.min(self.model.l.saturating_sub(1));
        if j == 0 {
            self.model.l
        } else {
            self.model.l - self.rng.gen_range(0..=j)
        }
    }

    fn draw_compute(&mut self, proc: ProcId, cycles: Cycles) -> Cycles {
        let ppk = self.config.drift_ppk as i64;
        if cycles == 0 || (ppk == 0 && self.config.proc_skew_ppk == 0) {
            return cycles;
        }
        let noise = if ppk == 0 { 0 } else { self.rng.gen_range(-ppk..=ppk) };
        let scale = self.proc_scale[proc as usize] + noise;
        let scaled = cycles as i128 * scale.max(0) as i128 / 1024;
        scaled.max(0) as Cycles
    }

    fn span(&mut self, proc: ProcId, start: Cycles, end: Cycles, activity: Activity) {
        if self.config.record_trace {
            self.trace.push(Span { proc, start, end, activity });
        }
    }

    /// Run a program handler and enqueue the commands it issues.
    fn run_handler<F>(&mut self, p: ProcId, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Ctx<'_>),
    {
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        cmds.clear();
        // Temporarily detach the program so the context can borrow `self`
        // state without aliasing.
        let mut program = std::mem::replace(
            &mut self.procs[p as usize].program,
            Box::new(crate::process::Passive),
        );
        {
            let mut ctx = Ctx::new(self.now, p, self.model.p, &mut cmds);
            f(program.as_mut(), &mut ctx);
        }
        self.procs[p as usize].program = program;
        self.procs[p as usize].cmds.extend(cmds.drain(..));
        self.cmd_scratch = cmds;
    }

    /// Try to make progress on processor `p` at the current time.
    fn advance(&mut self, p: ProcId) {
        let now = self.now;
        let idx = p as usize;
        if self.procs[idx].engaged || self.procs[idx].halted {
            return;
        }
        // Active-message polling: at every command boundary, an already
        // arrived message whose reception can start *now* is serviced
        // before the next command (the CM-5 communication layer polls the
        // network between operations). A capacity-stalled processor does
        // not poll — the model says it stalls.
        {
            let st = &self.procs[idx];
            if !st.waiting_on_src
                && !st.waiting_on_dst
                && st.busy_until <= now
                && st.next_recv_slot <= now
            {
                if let Some(Reverse(item)) = st.inbox.peek() {
                    if item.arrival <= now {
                        self.start_reception(p);
                        return;
                    }
                }
            }
        }
        if let Some(cmd) = self.procs[idx].cmds.front() {
            match *cmd {
                Command::SendBulk { dst, tag, ref data, words } => {
                    let big_g = self
                        .config
                        .loggp_big_g
                        .expect("send_bulk requires SimConfig::loggp_big_g");
                    let st = &self.procs[idx];
                    let s = st.busy_until.max(st.next_send_slot);
                    if now < s {
                        self.schedule(s, EventKind::Wake(p));
                        return;
                    }
                    if self.in_flight_from[idx] >= self.capacity {
                        let st = &mut self.procs[idx];
                        st.stall_since.get_or_insert(now);
                        st.waiting_on_src = true;
                        return;
                    }
                    if self.in_flight_to[dst as usize] >= self.capacity
                        || self.outstanding_to[dst as usize] >= self.max_outstanding
                    {
                        let st = &mut self.procs[idx];
                        st.stall_since.get_or_insert(now);
                        if !st.waiting_on_dst {
                            st.waiting_on_dst = true;
                            self.dst_waiters[dst as usize].push_back(p);
                        }
                        return;
                    }
                    let data = data.clone();
                    self.procs[idx].cmds.pop_front();
                    let st = &mut self.procs[idx];
                    st.waiting_on_src = false;
                    if let Some(since) = st.stall_since.take() {
                        st.stats.stall += now - since;
                        self.span(p, since, now, Activity::Stall);
                    }
                    let o = self.model.o;
                    // LogGP semantics: the processor pays only `o`; the
                    // interface streams the remaining words at `G` each,
                    // blocking the *next* injection until done.
                    let stream = (words - 1) * big_g;
                    let st = &mut self.procs[idx];
                    st.busy_until = now + o;
                    st.next_send_slot = (now + self.model.g).max(now + o + stream);
                    st.stats.send_overhead += o;
                    st.stats.msgs_sent += 1;
                    st.engaged = true;
                    self.span(p, now, now + o, Activity::SendOverhead);
                    self.in_flight_from[idx] += 1;
                    self.in_flight_to[dst as usize] += 1;
                    self.outstanding_to[dst as usize] += 1;
                    let lat = self.draw_latency();
                    let msg = Message { src: p, dst, tag, data };
                    // The capacity window mirrors the small-message rule:
                    // it covers the message's network occupancy (streaming
                    // plus flight), not the sender's overhead.
                    self.schedule(
                        now + stream + lat,
                        EventKind::Release { src: idx, dst: dst as usize },
                    );
                    self.schedule(now + o + stream + lat, EventKind::Arrive(msg));
                    self.schedule(now + o, EventKind::SendDone(p));
                }
                Command::Send { dst, tag, ref data } => {
                    let st = &self.procs[idx];
                    let s = st.busy_until.max(st.next_send_slot);
                    if now < s {
                        self.schedule(s, EventKind::Wake(p));
                        return;
                    }
                    if self.in_flight_from[idx] >= self.capacity {
                        // Stall until one of our own messages arrives.
                        let st = &mut self.procs[idx];
                        st.stall_since.get_or_insert(now);
                        st.waiting_on_src = true;
                        return;
                    }
                    if self.in_flight_to[dst as usize] >= self.capacity
                        || self.outstanding_to[dst as usize] >= self.max_outstanding
                    {
                        let st = &mut self.procs[idx];
                        st.stall_since.get_or_insert(now);
                        if !st.waiting_on_dst {
                            st.waiting_on_dst = true;
                            self.dst_waiters[dst as usize].push_back(p);
                        }
                        return;
                    }
                    // Proceed with the send at `now`.
                    let data = data.clone();
                    self.procs[idx].cmds.pop_front();
                    let st = &mut self.procs[idx];
                    st.waiting_on_src = false;
                    if let Some(since) = st.stall_since.take() {
                        st.stats.stall += now - since;
                        self.span(p, since, now, Activity::Stall);
                    }
                    let o = self.model.o;
                    let st = &mut self.procs[idx];
                    st.busy_until = now + o;
                    st.next_send_slot = now + self.model.g;
                    st.stats.send_overhead += o;
                    st.stats.msgs_sent += 1;
                    st.engaged = true;
                    self.span(p, now, now + o, Activity::SendOverhead);
                    self.in_flight_from[idx] += 1;
                    self.in_flight_to[dst as usize] += 1;
                    self.outstanding_to[dst as usize] += 1;
                    self.stats.max_inflight_per_src =
                        self.stats.max_inflight_per_src.max(self.in_flight_from[idx]);
                    self.stats.max_inflight_per_dst =
                        self.stats.max_inflight_per_dst.max(self.in_flight_to[dst as usize]);
                    let lat = self.draw_latency();
                    let msg = Message { src: p, dst, tag, data };
                    self.schedule(now + lat, EventKind::Release { src: idx, dst: dst as usize });
                    self.schedule(now + o + lat, EventKind::Arrive(msg));
                    self.schedule(now + o, EventKind::SendDone(p));
                }
                Command::Compute { cycles, tag } => {
                    if now < self.procs[idx].busy_until {
                        let t = self.procs[idx].busy_until;
                        self.schedule(t, EventKind::Wake(p));
                        return;
                    }
                    self.procs[idx].cmds.pop_front();
                    let dur = self.draw_compute(p, cycles);
                    let st = &mut self.procs[idx];
                    st.busy_until = now + dur;
                    st.stats.compute += dur;
                    st.engaged = true;
                    self.span(p, now, now + dur, Activity::Compute);
                    self.schedule(now + dur, EventKind::ComputeDone(p, tag));
                }
                Command::Barrier => {
                    if now < self.procs[idx].busy_until {
                        let t = self.procs[idx].busy_until;
                        self.schedule(t, EventKind::Wake(p));
                        return;
                    }
                    self.procs[idx].cmds.pop_front();
                    let st = &mut self.procs[idx];
                    st.in_barrier = true;
                    st.barrier_entered_at = now;
                    st.engaged = true;
                    self.barrier_count += 1;
                    self.check_barrier();
                }
                Command::Halt => {
                    self.procs[idx].cmds.pop_front();
                    self.procs[idx].halted = true;
                    self.alive -= 1;
                    self.check_barrier();
                }
            }
            return;
        }
        // No pending commands: service the network (waiting for the
        // earliest reception opportunity if it is in the future).
        let st = &self.procs[idx];
        if let Some(Reverse(item)) = st.inbox.peek() {
            let r = st.busy_until.max(st.next_recv_slot).max(item.arrival);
            if now < r {
                self.schedule(r, EventKind::Wake(p));
                return;
            }
            self.start_reception(p);
        }
        // Otherwise: idle until something arrives.
    }

    /// Begin receiving the earliest-arrived inbox message at the current
    /// time. Caller guarantees the processor is free and the gap allows.
    fn start_reception(&mut self, p: ProcId) {
        let now = self.now;
        let idx = p as usize;
        let Reverse(item) = self.procs[idx].inbox.pop().expect("inbox non-empty");
        debug_assert!(item.arrival <= now);
        let o = self.model.o;
        let st = &mut self.procs[idx];
        // A capacity-stalled send may have been woken and then preempted
        // by this reception; close its stall span so stall and reception
        // time stay disjoint in the accounting (the send re-opens it if
        // still blocked).
        if let Some(since) = st.stall_since.take() {
            st.stats.stall += now - since;
        }
        let st = &mut self.procs[idx];
        st.next_recv_slot = now + self.model.g;
        st.busy_until = now + o;
        st.stats.recv_overhead += o;
        st.receiving = Some(item.msg);
        st.engaged = true;
        self.span(p, now, now + o, Activity::RecvOverhead);
        self.schedule(now + o, EventKind::RecvDone(p));
    }

    fn check_barrier(&mut self) {
        if self.alive > 0 && self.barrier_count == self.alive {
            self.schedule(self.now + self.config.barrier_cost, EventKind::BarrierRelease);
        }
    }

    /// Run to quiescence. Consumes the machine and returns statistics and
    /// (if configured) the activity trace.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        // Start handlers fire at time 0 in processor-id order.
        for p in 0..self.model.p {
            self.run_handler(p, |prog, ctx| prog.on_start(ctx));
        }
        for p in 0..self.model.p {
            self.advance(p);
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            self.stats.events += 1;
            if self.stats.events > self.config.max_events {
                return Err(SimError::MaxEventsExceeded { limit: self.config.max_events });
            }
            debug_assert!(ev.time >= self.now, "time must not run backwards");
            self.now = ev.time;
            self.stats.completion = self.stats.completion.max(ev.time);
            match ev.kind {
                EventKind::Release { src, dst } => {
                    self.in_flight_from[src] -= 1;
                    self.in_flight_to[dst] -= 1;
                    // Wake capacity waiters of this destination (FIFO; each
                    // re-checks and re-queues if still blocked).
                    let waiters: Vec<ProcId> = self.dst_waiters[dst].drain(..).collect();
                    for w in waiters {
                        self.procs[w as usize].waiting_on_dst = false;
                        self.advance(w);
                    }
                    // The source may have been stalled on its own window.
                    if self.procs[src].waiting_on_src {
                        self.procs[src].waiting_on_src = false;
                        self.advance(msg_src(src));
                    }
                }
                EventKind::Arrive(msg) => {
                    let dst = msg.dst as usize;
                    self.stats.total_msgs += 1;
                    self.seq += 1;
                    let seq = self.seq;
                    self.procs[dst]
                        .inbox
                        .push(Reverse(InboxItem { arrival: self.now, seq, msg }));
                    self.advance(msg_dst(dst));
                }
                EventKind::SendDone(p) => {
                    self.procs[p as usize].engaged = false;
                    self.advance(p);
                }
                EventKind::ComputeDone(p, tag) => {
                    self.procs[p as usize].engaged = false;
                    self.run_handler(p, |prog, ctx| prog.on_compute_done(tag, ctx));
                    self.advance(p);
                }
                EventKind::RecvDone(p) => {
                    let st = &mut self.procs[p as usize];
                    st.engaged = false;
                    st.stats.msgs_recvd += 1;
                    let msg = st.receiving.take().expect("a reception was in progress");
                    // The NI buffer slot frees: senders blocked on the
                    // outstanding bound may proceed.
                    self.outstanding_to[p as usize] -= 1;
                    let waiters: Vec<ProcId> = self.dst_waiters[p as usize].drain(..).collect();
                    for w in waiters {
                        self.procs[w as usize].waiting_on_dst = false;
                        self.advance(w);
                    }
                    self.run_handler(p, |prog, ctx| prog.on_message(&msg, ctx));
                    self.advance(p);
                }
                EventKind::BarrierRelease => {
                    self.barrier_count = 0;
                    let released: Vec<ProcId> = (0..self.model.p)
                        .filter(|&p| self.procs[p as usize].in_barrier)
                        .collect();
                    for &p in &released {
                        let st = &mut self.procs[p as usize];
                        st.in_barrier = false;
                        st.engaged = false;
                        st.busy_until = self.now;
                        let entered = st.barrier_entered_at;
                        st.stats.barrier_wait += self.now - entered;
                        self.span(p, entered, self.now, Activity::Barrier);
                    }
                    for &p in &released {
                        self.run_handler(p, |prog, ctx| prog.on_barrier_release(ctx));
                    }
                    for &p in &released {
                        self.advance(p);
                    }
                }
                EventKind::Wake(p) => {
                    self.advance(p);
                }
            }
        }
        // Quiescence with unexecuted work is a deadlock, not a normal
        // end: a command queue that never drained (e.g. a send stalled on
        // a destination whose receiver stopped draining) or a barrier
        // that never released means the program did not complete.
        let stuck: Vec<ProcId> = (0..self.model.p)
            .filter(|&p| {
                let st = &self.procs[p as usize];
                !st.halted && (!st.cmds.is_empty() || st.in_barrier)
            })
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck });
        }
        for p in 0..self.model.p as usize {
            self.stats.procs[p] = self.procs[p].stats;
        }
        Ok(SimResult { stats: self.stats, trace: self.trace })
    }
}

// Small readability helpers: indices back to ProcId.
fn msg_src(src: usize) -> ProcId {
    src as ProcId
}
fn msg_dst(dst: usize) -> ProcId {
    dst as ProcId
}
