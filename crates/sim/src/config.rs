//! Simulator configuration: the fidelity knobs beyond the LogP quadruple.

use crate::faults::FaultPlan;
use crate::obs::{ObsSampling, SinkSpec};
use logp_core::Cycles;

/// Configuration for a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Maximum reduction of per-message latency below `L`. `0` means every
    /// message takes exactly `L`; a positive value makes latency a
    /// deterministic pseudo-random draw from `[L - jitter, L]`, exercising
    /// the model's allowance that "the latency experienced by any message
    /// is unpredictable, but is bounded above by L" and that messages "may
    /// not arrive in the same order as they are sent" (§3).
    pub latency_jitter: Cycles,
    /// Relative computation-time perturbation, in parts per 1024, drawn
    /// i.i.d. per `compute` call (high-frequency noise: cache misses,
    /// interrupts). `0` disables it.
    pub drift_ppk: u32,
    /// Systematic per-processor speed skew, in parts per 1024: each
    /// processor draws one fixed factor in `[-skew, +skew]` at machine
    /// construction and every `compute` is scaled by it. This is the
    /// *cumulative* desynchronization of §4.1.4 — "processors execute
    /// asynchronously ... they gradually drift out of sync during the
    /// remap phase" — which i.i.d. noise alone cannot produce (it
    /// averages out). `0` disables it.
    pub proc_skew_ppk: u32,
    /// Whether the ⌈L/g⌉ capacity constraint is enforced (ablation knob;
    /// the model always enforces it).
    pub enforce_capacity: bool,
    /// Destination network-interface buffer, in messages. A message that
    /// has arrived but whose reception has not completed still counts as
    /// "in transit" for the sender's admission check once the buffer is
    /// full — the backpressure real NIs exert. `None` defaults to
    /// `⌈L/g⌉ + 2`, which provably never blocks a schedule whose
    /// receivers drain promptly (a message is outstanding for `2o + L`
    /// and legal per-destination spacing is at least `max(g, o+1)`, so at
    /// most `⌈L/g⌉ + 2` overlap), while hot spots whose receivers cannot
    /// keep up still backpressure at the receiver's drain rate. Ignored
    /// when `enforce_capacity` is off.
    pub ni_buffer: Option<u64>,
    /// LogGP bulk gap `G`: cycles per additional word of a long message
    /// streamed by the network interface (§5.4's long-message extension,
    /// the LogGP refinement). `None` disables `send_bulk`.
    pub loggp_big_g: Option<Cycles>,
    /// Cost charged for the hardware barrier after the last processor
    /// arrives (the CM-5 has "a broadcast/scan/prefix control network";
    /// §5.5 discusses such specialized hardware).
    pub barrier_cost: Cycles,
    /// Record per-processor activity spans for Gantt rendering.
    pub record_trace: bool,
    /// Record the full message-lifecycle log (submit → inject → flight →
    /// delivery timestamps plus causal parent IDs) in
    /// `SimResult::obs`. Implies `record_trace` — the critical-path
    /// analyzer needs activity spans to attribute wait windows.
    pub record_msg_log: bool,
    /// Maintain the metrics registry (counters and latency/stall
    /// histograms) in `SimResult::metrics`.
    pub record_metrics: bool,
    /// Sampling period, in cycles, for time-series gauges (in-flight per
    /// destination, ready-queue depth, utilization). `0` disables gauge
    /// sampling; a positive value implies `record_metrics`.
    pub metrics_grid: Cycles,
    /// Seed for all pseudo-random draws (jitter, drift). Two runs with the
    /// same seed and programs are bit-identical.
    pub seed: u64,
    /// Hard cap on simulated events, to turn runaway programs into errors
    /// instead of hangs.
    pub max_events: u64,
    /// Deterministic fault-injection plan (message drop/duplicate/delay
    /// and crash-stop schedules; see [`FaultPlan`] and
    /// `docs/FAILURE_MODEL.md`). `None` — the default — monomorphizes
    /// every fault branch out of the engine's hot path, and a plan with
    /// all rates zero and no crashes is cycle-identical to `None`.
    pub faults: Option<FaultPlan>,
    /// Number of event lanes for the sharded engine (see
    /// `logp_sim::engine::shard`). `0` and `1` — the default — run the
    /// classic single-heap engine unchanged. Any value `>= 2` partitions
    /// the processors into that many contiguous lanes synchronized by
    /// conservative `o + L` lookahead windows; results are bit-identical
    /// across every lane count `>= 2`, and match the classic engine's
    /// workload-level outcome whenever both sample the same randomness
    /// (`latency_jitter == 0`, `drift_ppk == 0`). The sharded engine
    /// enforces the source-side ⌈L/g⌉ window only (no destination
    /// backpressure), and runs needing gauge sampling
    /// (`metrics_grid > 0`) fall back to the classic engine.
    pub shards: u32,
    /// Worker threads for the sharded engine (`0` = run the lanes
    /// serially on the calling thread, today's behavior). With `n >= 1`,
    /// lanes advance concurrently on a scoped pool of `n` OS threads
    /// within each lookahead window; cross-lane sends are exchanged at
    /// the window barrier in canonical `(src_lane, seq)` order, so every
    /// result — `SimResult`, streamed artifacts, sampled sets — is
    /// bit-identical for any worker count (including `0`). Ignored when
    /// the run dispatches to the classic engine (`shards < 2`).
    pub workers: u32,
    /// Streaming observability sink: lifecycle records flow here as they
    /// complete instead of accumulating in `SimResult::obs` (which stays
    /// empty), so memory is bounded by in-flight messages, not total
    /// traffic. Implies `record_msg_log`. See [`SinkSpec`] and
    /// `docs/OBSERVABILITY.md`.
    pub sink: Option<SinkSpec>,
    /// Which records a streaming sink sees (default: all). Pure function
    /// of record identity, so the sampled set is identical across lane
    /// and thread counts.
    pub sampling: ObsSampling,
    /// Maintain [`crate::critpath::ObsAggregate`] online while records
    /// stream: per-processor and global activity totals plus the
    /// critical-path decomposition, without retaining the log. Implies a
    /// streaming sink ([`SinkSpec::Null`] if none was set) and
    /// `record_msg_log`.
    pub aggregate: bool,
    /// Time-bin width, in cycles, for the aggregate's over-time view
    /// (`0` disables binning; a positive value implies `aggregate`).
    pub agg_grid: Cycles,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency_jitter: 0,
            drift_ppk: 0,
            proc_skew_ppk: 0,
            enforce_capacity: true,
            ni_buffer: None,
            loggp_big_g: None,
            barrier_cost: 0,
            record_trace: false,
            record_msg_log: false,
            record_metrics: false,
            metrics_grid: 0,
            seed: 0x1092_7735_AC01,
            max_events: 2_000_000_000,
            faults: None,
            shards: 0,
            workers: 0,
            sink: None,
            sampling: ObsSampling::All,
            aggregate: false,
            agg_grid: 0,
        }
    }
}

impl SimConfig {
    /// Default config with tracing enabled. Equivalent to
    /// `SimConfig::default().with_trace(true)`.
    pub fn traced() -> Self {
        Self::default().with_trace(true)
    }

    /// Default config with full observability: activity trace, message
    /// lifecycle log, and metrics.
    pub fn observed() -> Self {
        Self::default()
            .with_trace(true)
            .with_msg_log(true)
            .with_metrics(true)
    }

    /// Enable or disable activity-span tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enable or disable the message-lifecycle log (on also enables the
    /// activity trace, which critical-path attribution requires).
    pub fn with_msg_log(mut self, on: bool) -> Self {
        self.record_msg_log = on;
        if on {
            self.record_trace = true;
        }
        self
    }

    /// Enable or disable the metrics registry.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.record_metrics = on;
        self
    }

    /// Sample time-series gauges every `grid` cycles (implies metrics
    /// when `grid > 0`).
    pub fn with_metrics_grid(mut self, grid: Cycles) -> Self {
        self.metrics_grid = grid;
        if grid > 0 {
            self.record_metrics = true;
        }
        self
    }

    /// Stream lifecycle records to `sink` instead of retaining them
    /// (implies the lifecycle log machinery; `SimResult::obs` stays
    /// empty).
    pub fn with_sink(mut self, sink: SinkSpec) -> Self {
        self.sink = Some(sink);
        self.record_msg_log = true;
        self.record_trace = true;
        self
    }

    /// Apply a sampling policy to the streaming sink.
    pub fn with_sampling(mut self, sampling: ObsSampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Maintain the online [`crate::critpath::ObsAggregate`] (implies a
    /// streaming sink — [`SinkSpec::Null`] if none was configured).
    pub fn with_aggregate(mut self, on: bool) -> Self {
        self.aggregate = on;
        if on {
            self.record_msg_log = true;
            self.record_trace = true;
        }
        self
    }

    /// Time-bin the aggregate every `grid` cycles (implies `aggregate`
    /// when `grid > 0`).
    pub fn with_agg_grid(mut self, grid: Cycles) -> Self {
        self.agg_grid = grid;
        if grid > 0 {
            self = self.with_aggregate(true);
        }
        self
    }

    /// Enable latency jitter of up to `j` cycles below `L`.
    pub fn with_jitter(mut self, j: Cycles) -> Self {
        self.latency_jitter = j;
        self
    }

    /// Enable compute drift of `ppk` parts per 1024.
    pub fn with_drift(mut self, ppk: u32) -> Self {
        self.drift_ppk = ppk;
        self
    }

    /// Enable systematic per-processor speed skew of `ppk` parts per 1024.
    pub fn with_skew(mut self, ppk: u32) -> Self {
        self.proc_skew_ppk = ppk;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable LogGP long messages with bulk gap `big_g`.
    pub fn with_big_g(mut self, big_g: Cycles) -> Self {
        self.loggp_big_g = Some(big_g);
        self
    }

    /// Install a deterministic fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Run on the sharded lane engine with `n >= 2` lanes (`0` and `1`
    /// select the classic single-heap engine). Lane counts larger than
    /// `P` are clamped at partition time; results are bit-identical
    /// across every lane count `>= 2` (see the `shards` field).
    pub fn with_shards(mut self, n: u32) -> Self {
        self.shards = n;
        self
    }

    /// Execute the sharded engine's lanes on `n` worker threads (`0`
    /// restores the serial default). Results are bit-identical for any
    /// worker count; see the `workers` field. A no-op unless the run
    /// dispatches to the sharded engine (`with_shards(n >= 2)`).
    pub fn with_workers(mut self, n: u32) -> Self {
        self.workers = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_exact_model() {
        let c = SimConfig::default();
        assert_eq!(c.latency_jitter, 0);
        assert_eq!(c.drift_ppk, 0);
        assert!(c.enforce_capacity);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::traced()
            .with_jitter(3)
            .with_drift(10)
            .with_seed(7);
        assert!(c.record_trace);
        assert_eq!(c.latency_jitter, 3);
        assert_eq!(c.drift_ppk, 10);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn with_trace_composes_like_other_builders() {
        let c = SimConfig::default()
            .with_jitter(2)
            .with_trace(true)
            .with_seed(9);
        assert!(c.record_trace);
        assert_eq!(c, SimConfig::traced().with_jitter(2).with_seed(9));
        assert!(!SimConfig::traced().with_trace(false).record_trace);
    }

    #[test]
    fn msg_log_implies_trace() {
        let c = SimConfig::default().with_msg_log(true);
        assert!(c.record_msg_log);
        assert!(c.record_trace);
    }

    #[test]
    fn metrics_grid_implies_metrics() {
        let c = SimConfig::default().with_metrics_grid(10);
        assert!(c.record_metrics);
        assert_eq!(c.metrics_grid, 10);
        assert!(!SimConfig::default().with_metrics_grid(0).record_metrics);
    }

    #[test]
    fn observed_enables_everything() {
        let c = SimConfig::observed();
        assert!(c.record_trace && c.record_msg_log && c.record_metrics);
    }
}
