//! Deterministic fault injection: seeded message drops, duplicates, delays,
//! and scheduled crash-stop processor failures.
//!
//! LogP deliberately assumes a reliable network, but the paper itself notes
//! that real machines drop and reorder packets and that the messaging layer
//! must mask this (the CM-5's active-message layer does exactly that). A
//! [`FaultPlan`] gives the simulator a *repeatable* failure axis on which to
//! study that masking: every per-message decision is a pure SplitMix64 hash
//! of `(plan seed, channel, message identity, attempt, lane)` — independent
//! of the engine's own RNG stream and of wall-clock scheduling — so
//!
//! * a plan with all rates zero and no crashes is **cycle-identical** to
//!   running with no plan at all (decisions never perturb the engine's
//!   jitter/skew draws, and the fault branches are monomorphized away when
//!   [`crate::SimConfig::faults`] is `None`);
//! * the same plan replays **bit-identically** at any sweep thread count
//!   (like [`crate::runner::derive_seed`], decisions depend only on hashed
//!   identities, never on execution order);
//! * raising a rate only **grows** the affected set: a message dropped at
//!   `drop_ppm = r` is also dropped at every rate above `r`, because the
//!   hash is compared against the threshold and does not itself depend on
//!   the threshold.
//!
//! Reordering is not a separate fault kind: delaying one message past its
//! successors already reorders the channel, and the network's latency
//! jitter ([`crate::SimConfig::with_jitter`]) does the same. The handbook in
//! `docs/FAILURE_MODEL.md` spells out the exact semantics of each fault
//! kind and how retry cost composes with `o`, `g`, and `L`.
//!
//! # Example: a plan that drops everything
//!
//! ```
//! use logp_core::LogP;
//! use logp_sim::process::StartFn;
//! use logp_sim::{Data, FaultPlan, Sim, SimConfig};
//!
//! let m = LogP::new(6, 2, 4, 2).unwrap();
//! let plan = FaultPlan::new(1).with_drop_ppm(1_000_000); // drop every message
//! let mut sim = Sim::new(m, SimConfig::default().with_faults(plan));
//! sim.set_all(|_| {
//!     Box::new(StartFn(|ctx| {
//!         if ctx.me() == 0 {
//!             ctx.send(1, 7, Data::U64(42));
//!         }
//!         ctx.halt();
//!     }))
//! });
//! let res = sim.run().unwrap();
//! assert_eq!(res.stats.msgs_dropped, 1); // consumed the NI, never arrived
//! assert_eq!(res.stats.total_msgs, 0);
//! ```

use logp_core::rng::splitmix64;
use logp_core::{Cycles, ProcId};
use std::collections::HashMap;

use crate::message::Data;

/// Parts-per-million denominator for all fault rates.
const PPM: u64 = 1_000_000;

/// Message identity used for unsequenced (raw) messages: each `(src, dst)`
/// channel keeps an injection counter and hashes it through the *attempt*
/// slot instead. Sequenced messages ([`Data::Seq`]) can never collide with
/// this sentinel because their identity is a small wrapping counter.
const IDENT_CHANNEL: u64 = u64::MAX;

/// What the fault layer decided for one injected message. Produced by
/// [`FaultPlan::decide`]; a plan with all rates zero always returns the
/// identity decision (no drop, no duplicate, zero delays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// The message is silently discarded: it consumes the sender's network
    /// window for its flight time but the destination NI never sees it.
    pub drop: bool,
    /// A second copy of the message is injected (never in place of the
    /// original — a dropped message is not also duplicated).
    pub duplicate: bool,
    /// Extra in-flight delay added to the message's latency, in cycles.
    pub delay: Cycles,
    /// Additional delay (beyond `delay`) applied to the duplicate copy, so
    /// the copy always trails the original by at least one cycle.
    pub dup_delay: Cycles,
}

/// A seeded, deterministic plan of message and processor faults.
///
/// Rates are in parts per million (`ppm`), so `50_000` means 5%. Crash-stop
/// failures are scheduled at absolute cycles: from that cycle on, the
/// processor runs no handlers and its network interface discards every
/// arriving message. Attach a plan to a run with
/// [`crate::SimConfig::with_faults`].
///
/// Decisions are *pure*: [`FaultPlan::decide`] is a function of the plan and
/// the message identity only, so any two runs (at any thread count) that
/// inject the same logical messages see the same faults.
///
/// ```
/// use logp_sim::FaultPlan;
///
/// let plan = FaultPlan::new(7).with_drop_ppm(50_000).with_crash(3, 100);
/// assert_eq!(plan.survivors(8), vec![0, 1, 2, 4, 5, 6, 7]);
/// assert!(plan.is_crashed(3));
///
/// // Decisions are pure and repeatable…
/// let d = plan.decide(0, 1, 42, 0);
/// assert_eq!(d, plan.decide(0, 1, 42, 0));
///
/// // …and monotone in the rate: everything dropped at 5% is still
/// // dropped at 20%.
/// let heavier = FaultPlan::new(7).with_drop_ppm(200_000);
/// for ident in 0..512u64 {
///     if plan.decide(0, 1, ident, 0).drop {
///         assert!(heavier.decide(0, 1, ident, 0).drop);
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Base seed hashed into every decision.
    pub seed: u64,
    /// Probability of dropping a message, in parts per million.
    pub drop_ppm: u32,
    /// Probability of duplicating a message, in parts per million.
    pub dup_ppm: u32,
    /// Probability of delaying a message, in parts per million.
    pub delay_ppm: u32,
    /// Maximum extra delay in cycles; actual delays are uniform in
    /// `1..=max_delay`. Also bounds the duplicate copy's extra lag.
    pub max_delay: Cycles,
    /// Crash-stop schedule: `(processor, cycle)` pairs. A cycle of 0 means
    /// the processor is dead from the start (its `on_start` never runs).
    pub crashes: Vec<(ProcId, Cycles)>,
}

impl FaultPlan {
    /// A no-fault plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the message drop rate in parts per million.
    pub fn with_drop_ppm(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// Set the message duplication rate in parts per million.
    pub fn with_dup_ppm(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Set the message delay rate (ppm) and the maximum delay in cycles.
    pub fn with_delay(mut self, ppm: u32, max_delay: Cycles) -> Self {
        self.delay_ppm = ppm;
        self.max_delay = max_delay;
        self
    }

    /// Schedule a crash-stop failure of `proc` at the given cycle.
    pub fn with_crash(mut self, proc: ProcId, at: Cycles) -> Self {
        self.crashes.push((proc, at));
        self
    }

    /// True if the plan injects no faults at all — such a plan is
    /// guaranteed cycle-identical to running without one.
    pub fn is_noop(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0 && self.delay_ppm == 0 && self.crashes.is_empty()
    }

    /// True if `proc` crashes at any point under this plan.
    pub fn is_crashed(&self, proc: ProcId) -> bool {
        self.crashes.iter().any(|&(p, _)| p == proc)
    }

    /// The processors of a `p`-machine that never crash, in ascending
    /// order. Resilient collectives rebuild their trees over this set.
    pub fn survivors(&self, p: u32) -> Vec<ProcId> {
        (0..p).filter(|&i| !self.is_crashed(i)).collect()
    }

    /// The pure per-message fault decision.
    ///
    /// `ident` is the message's logical identity on the `(src, dst)`
    /// channel — the sequence number for [`Data::Seq`]-wrapped traffic, a
    /// per-channel injection counter otherwise — and `attempt` counts
    /// injections of that identity (retransmissions). The same
    /// `(src, dst, ident, attempt)` always gets the same decision, and each
    /// fault kind's affected set grows monotonically with its rate.
    pub fn decide(&self, src: ProcId, dst: ProcId, ident: u64, attempt: u64) -> FaultDecision {
        let chan = splitmix64(self.seed ^ (((src as u64) << 32) | dst as u64));
        let id = splitmix64(chan ^ ident);
        let key = splitmix64(id ^ attempt);
        let lane = |l: u64| splitmix64(key ^ l);

        let drop = (lane(0) % PPM) < self.drop_ppm as u64;
        let duplicate = !drop && (lane(1) % PPM) < self.dup_ppm as u64;
        let delayed = self.max_delay > 0 && (lane(2) % PPM) < self.delay_ppm as u64;
        let delay = if delayed {
            1 + lane(3) % self.max_delay
        } else {
            0
        };
        let dup_delay = if duplicate {
            1 + lane(4) % self.max_delay.max(1)
        } else {
            0
        };
        FaultDecision {
            drop,
            duplicate,
            delay,
            dup_delay,
        }
    }
}

/// Mutable engine-side fault state: the plan plus the identity counters
/// that track message attempts, and the set of processors that have
/// actually crashed so far in this run.
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Per-`(src, dst)` injection counters for unsequenced messages.
    /// Keyed sparsely: a dense `p * p` table would be 8 TB at P = 10^6,
    /// while real traffic touches only the channels programs actually use.
    chan_seq: HashMap<(ProcId, ProcId), u64>,
    /// Injection (attempt) counters per sequenced logical message,
    /// keyed by `(src, dst, seq)`.
    attempts: HashMap<(ProcId, ProcId, u64), u64>,
    /// Which processors have crashed so far (dead NI, no handlers).
    /// Offset-indexed: per-lane Sims of the parallel executor hold only
    /// their own range.
    pub(crate) crashed: crate::engine::Off<bool>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, p: usize) -> Self {
        Self::for_range(plan, 0, p)
    }

    /// Fault state covering the processor range `[base, base + len)`.
    /// Valid for a lane Sim because every decision and crash lookup is
    /// keyed at the processor that owns it: `decide` runs at the source,
    /// crash checks at the destination's own lane, and the sparse
    /// `(src, dst)` counters are disjoint across source lanes.
    pub(crate) fn for_range(plan: FaultPlan, base: usize, len: usize) -> Self {
        FaultState {
            plan,
            chan_seq: HashMap::new(),
            attempts: HashMap::new(),
            crashed: crate::engine::Off::with_base(vec![false; len], base),
        }
    }

    /// Decide the fate of a message about to be injected, advancing the
    /// identity counters. Sequenced payloads are keyed by their sequence
    /// number so every retransmission of the same logical message gets its
    /// own stable decision; raw payloads are keyed by injection order.
    pub(crate) fn decide(&mut self, src: ProcId, dst: ProcId, data: &Data) -> FaultDecision {
        let (ident, attempt) = match data.seq() {
            Some(seq) => {
                let a = self.attempts.entry((src, dst, seq)).or_insert(0);
                let attempt = *a;
                *a += 1;
                (seq, attempt)
            }
            None => {
                let c = self.chan_seq.entry((src, dst)).or_insert(0);
                let n = *c;
                *c += 1;
                (IDENT_CHANNEL, n)
            }
        };
        self.plan.decide(src, dst, ident, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::new(99)
            .with_drop_ppm(100_000)
            .with_dup_ppm(50_000)
            .with_delay(200_000, 8);
        for src in 0..4 {
            for ident in 0..64 {
                let a = plan.decide(src, 1, ident, 0);
                let b = plan.decide(src, 1, ident, 0);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn drop_set_grows_with_rate() {
        let seeds = [1u64, 42, 0xDEAD];
        for seed in seeds {
            let lo = FaultPlan::new(seed).with_drop_ppm(20_000);
            let hi = FaultPlan::new(seed).with_drop_ppm(300_000);
            for ident in 0..2048u64 {
                if lo.decide(2, 3, ident, 1).drop {
                    assert!(hi.decide(2, 3, ident, 1).drop);
                }
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::new(7).with_drop_ppm(100_000); // 10%
        let n = 20_000;
        let dropped = (0..n).filter(|&i| plan.decide(0, 1, i, 0).drop).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn dropped_is_never_duplicated() {
        let plan = FaultPlan::new(3)
            .with_drop_ppm(500_000)
            .with_dup_ppm(500_000);
        for ident in 0..4096u64 {
            let d = plan.decide(1, 0, ident, 0);
            assert!(!(d.drop && d.duplicate));
        }
    }

    #[test]
    fn survivors_excludes_crashed() {
        let plan = FaultPlan::new(0).with_crash(0, 0).with_crash(5, 30);
        assert_eq!(plan.survivors(6), vec![1, 2, 3, 4]);
        assert!(plan.is_crashed(0) && plan.is_crashed(5));
        assert!(!plan.is_noop());
        assert!(FaultPlan::new(9).is_noop());
    }

    #[test]
    fn state_keys_sequenced_messages_by_seq() {
        let plan = FaultPlan::new(11).with_drop_ppm(300_000);
        let mut st = FaultState::new(plan.clone(), 2);
        let payload = Data::Seq {
            seq: 4,
            inner: Box::new(Data::U64(1)),
        };
        // First and second injection of the same logical message are
        // attempts 0 and 1 of identity 4 — exactly the pure decisions.
        let first = st.decide(0, 1, &payload);
        let second = st.decide(0, 1, &payload);
        assert_eq!(first, plan.decide(0, 1, 4, 0));
        assert_eq!(second, plan.decide(0, 1, 4, 1));
    }
}
