//! Chrome `trace_event` / Perfetto JSON export.
//!
//! [`perfetto_trace_json`] renders a [`SimResult`] as a JSON object in
//! the Trace Event Format that `ui.perfetto.dev` (and `chrome://tracing`)
//! load directly: one named track per processor carrying its activity
//! spans as complete (`"ph":"X"`) slices, async flow arrows
//! (`"ph":"s"`/`"f"`) from each message's send-overhead slice to its
//! receive-overhead slice, and counter (`"ph":"C"`) tracks for any
//! sampled gauges. Timestamps are simulated cycles, written in the
//! format's microsecond field — one cycle displays as one microsecond.
//!
//! The exporter is pure string building: the vendored `serde` is a no-op,
//! and the format is simple enough that hand-rolled JSON is the honest
//! implementation.

use crate::engine::SimResult;
use crate::obs::{MsgRecord, ObsSink, UNSET};
use crate::trace::{Activity, Span};
use std::io::{self, Write};
use std::path::Path;

fn activity_name(a: Activity) -> &'static str {
    match a {
        Activity::SendOverhead => "send o",
        Activity::RecvOverhead => "recv o",
        Activity::Compute => "compute",
        Activity::Stall => "stall",
        Activity::Barrier => "barrier",
    }
}

/// Whether a message gets a flow arrow. Flow endpoints must land strictly
/// inside a nonzero-width slice to bind (`"bp":"e"` attaches to the
/// enclosing slice): a crashed receiver or an `o = 0` machine produces
/// records whose overhead slices are empty, and an unmatched or unbound
/// flow id renders as a dangling arrow in the Perfetto UI. Skipping those
/// keeps every emitted flow bound on both ends.
fn flow_ok(m: &MsgRecord) -> bool {
    m.deliver != UNSET && m.sent > m.inject && m.deliver > m.recv_start
}

/// Render `res` as Chrome `trace_event` JSON (see module docs).
pub fn perfetto_trace_json(res: &SimResult) -> String {
    let mut s = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |s: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            s.push_str(",\n");
        }
        s.push_str(&ev);
    };

    // Track naming metadata: one process for the machine, one thread per
    // simulated processor.
    push(
        &mut s,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"LogP machine\"}}"
            .to_string(),
    );
    for p in 0..res.stats.procs.len() {
        push(
            &mut s,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"args\":{{\"name\":\"P{p}\"}}}}"
            ),
        );
        push(
            &mut s,
            format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"args\":{{\"sort_index\":{p}}}}}"
            ),
        );
    }

    // Activity spans as complete slices.
    for sp in &res.trace.spans {
        push(
            &mut s,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"activity\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                activity_name(sp.activity),
                sp.proc,
                sp.start,
                sp.end - sp.start
            ),
        );
    }

    // Message flights as flow arrows: start inside the send-overhead
    // slice, end (binding to the enclosing slice's start) inside the
    // receive-overhead slice. Messages whose endpoints cannot bind
    // (crashed receivers, zero-overhead machines) are skipped — see
    // [`flow_ok`].
    for m in res.obs.delivered().filter(|m| flow_ok(m)) {
        push(
            &mut s,
            format!(
                "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{}}}",
                m.id, m.src, m.inject
            ),
        );
        push(
            &mut s,
            format!(
                "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{}}}",
                m.id, m.dst, m.recv_start
            ),
        );
    }

    // Gauge time series as counter tracks.
    for g in res.metrics.gauges() {
        for (t, v) in &g.samples {
            push(
                &mut s,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":0,\"ts\":{t},\"args\":{{\"value\":{v}}}}}",
                    g.name
                ),
            );
        }
    }

    s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    s
}

/// Write the per-run artifacts a `--trace-out` / `--metrics-out` request
/// asks for: Perfetto JSON to `trace_out`, metrics JSON to `metrics_out`
/// (either may be `None`).
pub fn write_artifacts(
    res: &SimResult,
    trace_out: Option<&Path>,
    metrics_out: Option<&Path>,
) -> io::Result<()> {
    if let Some(path) = trace_out {
        std::fs::write(path, perfetto_trace_json(res))?;
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, res.metrics.to_json())?;
    }
    Ok(())
}

/// Streaming Perfetto writer: the same `trace_event` JSON as
/// [`perfetto_trace_json`], written incrementally as records complete.
/// Memory is bounded by the per-processor metadata bitmap — slices and
/// flows go straight to the `BufWriter`. Thread-naming metadata is
/// emitted lazily the first time a processor appears, so the sink never
/// needs to know `P` up front. I/O errors are latched and surface from
/// [`ObsSink::finish`] as the run's `SimError::Sink`.
pub struct PerfettoSink {
    out: Option<io::BufWriter<std::fs::File>>,
    err: Option<String>,
    buf: String,
    first: bool,
    /// Processors whose thread metadata has been written.
    named: Vec<bool>,
}

impl PerfettoSink {
    pub fn create(path: &Path) -> Self {
        let (out, err) = match std::fs::File::create(path) {
            Ok(f) => (Some(io::BufWriter::new(f)), None),
            Err(e) => (None, Some(format!("create {}: {e}", path.display()))),
        };
        let mut sink = PerfettoSink {
            out,
            err,
            buf: String::with_capacity(256),
            first: true,
            named: Vec::new(),
        };
        sink.buf.push_str("{\"traceEvents\":[\n");
        sink.event(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"LogP machine\"}}",
        );
        sink
    }

    /// Append one event (comma-separated) and flush the buffer to disk.
    fn event(&mut self, ev: &str) {
        if !std::mem::take(&mut self.first) {
            self.buf.push_str(",\n");
        }
        self.buf.push_str(ev);
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.write_all(self.buf.as_bytes()) {
                self.err.get_or_insert_with(|| format!("write: {e}"));
                self.out = None;
            }
        }
        self.buf.clear();
    }

    /// Emit thread metadata for `p` the first time it appears.
    fn ensure_thread(&mut self, p: logp_core::ProcId) {
        let i = p as usize;
        if i >= self.named.len() {
            self.named.resize(i + 1, false);
        }
        if self.named[i] {
            return;
        }
        self.named[i] = true;
        self.event(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"args\":{{\"name\":\"P{p}\"}}}}"
        ));
        self.event(&format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"args\":{{\"sort_index\":{p}}}}}"
        ));
    }
}

impl ObsSink for PerfettoSink {
    fn on_msg(&mut self, m: &MsgRecord) {
        if !flow_ok(m) {
            return;
        }
        self.ensure_thread(m.src);
        self.ensure_thread(m.dst);
        self.event(&format!(
            "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{}}}",
            m.id, m.src, m.inject
        ));
        self.event(&format!(
            "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{}}}",
            m.id, m.dst, m.recv_start
        ));
    }

    fn on_span(&mut self, s: &Span) {
        self.ensure_thread(s.proc);
        self.event(&format!(
            "{{\"name\":\"{}\",\"cat\":\"activity\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            activity_name(s.activity),
            s.proc,
            s.start,
            s.end - s.start
        ));
    }

    fn finish(&mut self) -> Result<(), String> {
        // The `process_name` metadata event always precedes the footer,
        // so no trailing-comma bookkeeping is needed here.
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out
                .write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
                .and_then(|_| out.flush())
            {
                self.err.get_or_insert_with(|| format!("finish: {e}"));
            }
        }
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Sim;
    use crate::message::Data;
    use crate::process::{Ctx, StartFn};
    use logp_core::LogP;

    fn ping_result() -> SimResult {
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let mut sim = Sim::new(
            model,
            SimConfig::default().with_msg_log(true).with_metrics_grid(5),
        );
        sim.set_process(
            0,
            Box::new(StartFn(|ctx: &mut Ctx<'_>| {
                ctx.send(1, 0, Data::U64(7));
            })),
        );
        sim.run().unwrap()
    }

    #[test]
    fn export_contains_tracks_slices_and_flows() {
        let json = perfetto_trace_json(&ping_result());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"P0\""));
        assert!(json.contains("\"name\":\"P1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"send o\""));
        assert!(json.contains("\"name\":\"recv o\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn export_is_balanced_json() {
        // No serde in the workspace: sanity-check bracket balance so a
        // malformed export cannot slip through silently.
        let json = perfetto_trace_json(&ping_result());
        let (mut depth, mut min_depth) = (0i64, 0i64);
        for b in json.bytes() {
            match b {
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                _ => {}
            }
            min_depth = min_depth.min(depth);
        }
        assert_eq!(depth, 0);
        assert_eq!(min_depth, 0);
    }

    #[test]
    fn write_artifacts_creates_files() {
        let dir = std::env::temp_dir().join("logp_perfetto_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.trace.json");
        let metrics = dir.join("t.metrics.json");
        write_artifacts(&ping_result(), Some(&trace), Some(&metrics)).unwrap();
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("traceEvents"));
        assert!(std::fs::read_to_string(&metrics)
            .unwrap()
            .contains("\"counters\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
