//! Critical-path analysis over the causal event DAG.
//!
//! Figure 3 of the paper argues the optimal broadcast's completion time
//! by walking the chain of sends that ends at the last processor and
//! attributing every cycle on it to `o`, `g`, or `L`. [`critical_path`]
//! mechanizes that argument for *any* run with the lifecycle log enabled
//! (`SimConfig::record_msg_log`): starting from the latest delivery,
//! compute completion, or barrier release, it follows each record's
//! [`Cause`] backward to time 0 and classifies every cycle in between.
//!
//! Because each node on the path covers exactly the interval from its
//! cause's completion (when its command was submitted) to its own
//! completion, the classified segments tile `[0, completion]` of the
//! terminal event with no gaps — so the component cycles always sum to
//! the path total, and for the paper's optimal broadcast and summation
//! schedules the total reproduces the closed forms in `logp-core`
//! cycle-exactly (pinned in `tests/observability.rs`).
//!
//! Attribution rules:
//! * a message's send/receive overhead windows are `o`; its network
//!   flight is `L` (for LogGP bulk messages the `(words-1)·G` stream is
//!   folded into the flight segment);
//! * within a wait window (command submitted but not started), time the
//!   processor spent busy takes that activity's class (`o` for other
//!   messages' overheads, compute, capacity stall, barrier), idle time
//!   before the recorded gap gate is `g`, and residual idle time is
//!   `wait`.

use crate::engine::SimResult;
use crate::obs::Cause;
use crate::trace::{Activity, Span};
use logp_core::{Cycles, ProcId};
use std::fmt::Write as _;

/// Classification of one critical-path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Send or receive overhead.
    O,
    /// Waiting for an injection/reception gap slot.
    G,
    /// Network flight.
    L,
    /// Local computation.
    Compute,
    /// Capacity-constraint stall.
    Stall,
    /// Barrier cost or barrier wait.
    Barrier,
    /// Idle time not explained by the gap gate (e.g. a handler waiting
    /// for its processor to finish unrelated work).
    Wait,
    /// Time spent waiting on a retransmission timer — the protocol cost
    /// a reliable-delivery layer pays when a fault plan drops messages
    /// (the window between arming a [`crate::obs::TimerRecord`]'s timer
    /// and its fire, minus any busy activity inside it).
    Retry,
}

impl StepKind {
    /// Short label used in rendered reports ("o", "g", "L", ...).
    pub fn label(&self) -> &'static str {
        match self {
            StepKind::O => "o",
            StepKind::G => "g",
            StepKind::L => "L",
            StepKind::Compute => "compute",
            StepKind::Stall => "stall",
            StepKind::Barrier => "barrier",
            StepKind::Wait => "wait",
            StepKind::Retry => "retry",
        }
    }

    pub(crate) fn from_activity(a: Activity) -> StepKind {
        match a {
            Activity::SendOverhead | Activity::RecvOverhead => StepKind::O,
            Activity::Compute => StepKind::Compute,
            Activity::Stall => StepKind::Stall,
            Activity::Barrier => StepKind::Barrier,
        }
    }
}

/// One contiguous classified segment `[start, end)` of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    pub kind: StepKind,
    /// The processor the cycles were spent on (the sender for flight
    /// segments).
    pub proc: ProcId,
    pub start: Cycles,
    pub end: Cycles,
}

impl PathStep {
    pub fn cycles(&self) -> Cycles {
        self.end - self.start
    }
}

/// Cycle totals of the path by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Components {
    pub o: Cycles,
    pub g: Cycles,
    pub l: Cycles,
    pub compute: Cycles,
    pub stall: Cycles,
    pub barrier: Cycles,
    pub wait: Cycles,
    pub retry: Cycles,
}

impl Components {
    /// Sum of all classes — always equals [`CritPath::total`].
    pub fn sum(&self) -> Cycles {
        self.o + self.g + self.l + self.compute + self.stall + self.barrier + self.wait + self.retry
    }

    /// Component-wise accumulate (used when merging per-lane aggregates).
    pub(crate) fn accum(&mut self, other: &Components) {
        self.o += other.o;
        self.g += other.g;
        self.l += other.l;
        self.compute += other.compute;
        self.stall += other.stall;
        self.barrier += other.barrier;
        self.wait += other.wait;
        self.retry += other.retry;
    }

    pub(crate) fn add(&mut self, kind: StepKind, cycles: Cycles) {
        match kind {
            StepKind::O => self.o += cycles,
            StepKind::G => self.g += cycles,
            StepKind::L => self.l += cycles,
            StepKind::Compute => self.compute += cycles,
            StepKind::Stall => self.stall += cycles,
            StepKind::Barrier => self.barrier += cycles,
            StepKind::Wait => self.wait += cycles,
            StepKind::Retry => self.retry += cycles,
        }
    }
}

/// The analyzed critical path of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPath {
    /// Completion time of the terminal event (= `components.sum()`).
    pub total: Cycles,
    pub components: Components,
    /// The path's segments in time order, tiling `[0, total)`.
    pub steps: Vec<PathStep>,
}

impl CritPath {
    /// Human-readable report: component table plus the step sequence.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "critical path: {} cycles, {} steps",
            self.total,
            self.steps.len()
        );
        let c = &self.components;
        for (label, v) in [
            ("o", c.o),
            ("g", c.g),
            ("L", c.l),
            ("compute", c.compute),
            ("stall", c.stall),
            ("barrier", c.barrier),
            ("wait", c.wait),
            ("retry", c.retry),
        ] {
            if v > 0 {
                let pct = 100.0 * v as f64 / self.total.max(1) as f64;
                let _ = writeln!(s, "  {label:<8} {v:>8}  ({pct:5.1}%)");
            }
        }
        let _ = writeln!(s, "steps (start..end  proc  class):");
        for st in &self.steps {
            let _ = writeln!(
                s,
                "  {:>8}..{:<8} P{:<4} {}",
                st.start,
                st.end,
                st.proc,
                st.kind.label()
            );
        }
        s
    }
}

/// Nodes of the causal DAG the walk can stand on.
#[derive(Clone, Copy)]
enum Node {
    Msg(usize),
    Comp(usize),
    Bar(usize),
    Timer(usize),
}

/// Classify the wait window `[from, to)` on `proc`: busy spans keep their
/// activity class; idle cycles before `gate` are `g`, after it `wait`.
pub(crate) fn attribute_window(
    spans: &[Span],
    proc: ProcId,
    from: Cycles,
    to: Cycles,
    gate: Cycles,
    out: &mut Vec<PathStep>,
) {
    if to <= from {
        return;
    }
    let idle = |a: Cycles, b: Cycles, out: &mut Vec<PathStep>| {
        let mid = gate.clamp(a, b);
        if mid > a {
            out.push(PathStep {
                kind: StepKind::G,
                proc,
                start: a,
                end: mid,
            });
        }
        if b > mid {
            out.push(PathStep {
                kind: StepKind::Wait,
                proc,
                start: mid,
                end: b,
            });
        }
    };
    let mut t = from;
    for s in spans {
        if s.end <= t {
            continue;
        }
        if s.start >= to {
            break;
        }
        let a = s.start.max(t);
        if a > t {
            idle(t, a, out);
        }
        let b = s.end.min(to);
        out.push(PathStep {
            kind: StepKind::from_activity(s.activity),
            proc,
            start: a,
            end: b,
        });
        t = b;
        if t >= to {
            break;
        }
    }
    if t < to {
        idle(t, to, out);
    }
}

/// Walk the causal DAG backward from the run's last event and classify
/// every cycle on the chain. Returns `None` when the lifecycle log is
/// empty (observability was off, or nothing happened).
pub fn critical_path(res: &SimResult) -> Option<CritPath> {
    let log = &res.obs;
    // Terminal node: the latest-completing delivery / compute / barrier,
    // with a deterministic (kind, id) tie-break.
    let mut terminal: Option<(Cycles, u8, u64, Node)> = None;
    let mut consider = |cand: (Cycles, u8, u64, Node)| {
        let better = match &terminal {
            None => true,
            Some((t, k, i, _)) => (cand.0, cand.1, cand.2) > (*t, *k, *i),
        };
        if better {
            terminal = Some(cand);
        }
    };
    for m in log.delivered() {
        consider((m.deliver, 0, m.id, Node::Msg(m.id as usize)));
    }
    for c in &log.computes {
        consider((c.end, 1, c.id, Node::Comp(c.id as usize)));
    }
    for b in &log.barriers {
        consider((b.release, 2, b.id, Node::Bar(b.id as usize)));
    }
    let (total, _, _, mut node) = terminal?;

    // Per-processor spans in start order, for wait-window attribution.
    let nprocs = res.stats.procs.len();
    let mut spans: Vec<Vec<Span>> = vec![Vec::new(); nprocs];
    for s in &res.trace.spans {
        spans[s.proc as usize].push(*s);
    }
    for v in &mut spans {
        v.sort_by_key(|s| s.start);
    }

    // Walk backward, collecting each node's (time-ordered) steps.
    let mut rev_nodes: Vec<Vec<PathStep>> = Vec::new();
    loop {
        let mut seg = Vec::new();
        let cause = match node {
            Node::Msg(i) => {
                let m = &log.msgs[i];
                attribute_window(
                    &spans[m.src as usize],
                    m.src,
                    m.submit,
                    m.inject,
                    m.send_gate,
                    &mut seg,
                );
                if m.sent > m.inject {
                    seg.push(PathStep {
                        kind: StepKind::O,
                        proc: m.src,
                        start: m.inject,
                        end: m.sent,
                    });
                }
                if m.arrive > m.sent {
                    seg.push(PathStep {
                        kind: StepKind::L,
                        proc: m.src,
                        start: m.sent,
                        end: m.arrive,
                    });
                }
                attribute_window(
                    &spans[m.dst as usize],
                    m.dst,
                    m.arrive,
                    m.recv_start,
                    m.recv_gate,
                    &mut seg,
                );
                if m.deliver > m.recv_start {
                    seg.push(PathStep {
                        kind: StepKind::O,
                        proc: m.dst,
                        start: m.recv_start,
                        end: m.deliver,
                    });
                }
                m.cause
            }
            Node::Comp(i) => {
                let c = &log.computes[i];
                attribute_window(
                    &spans[c.proc as usize],
                    c.proc,
                    c.submit,
                    c.start,
                    c.submit,
                    &mut seg,
                );
                if c.end > c.start {
                    seg.push(PathStep {
                        kind: StepKind::Compute,
                        proc: c.proc,
                        start: c.start,
                        end: c.end,
                    });
                }
                c.cause
            }
            Node::Bar(i) => {
                let b = &log.barriers[i];
                attribute_window(
                    &spans[b.last_proc as usize],
                    b.last_proc,
                    b.submit,
                    b.enter,
                    b.submit,
                    &mut seg,
                );
                if b.release > b.enter {
                    seg.push(PathStep {
                        kind: StepKind::Barrier,
                        proc: b.last_proc,
                        start: b.enter,
                        end: b.release,
                    });
                }
                b.cause
            }
            Node::Timer(i) => {
                let t = &log.timers[i];
                attribute_window(
                    &spans[t.proc as usize],
                    t.proc,
                    t.submit,
                    t.fire,
                    t.submit,
                    &mut seg,
                );
                // Idle cycles inside the timer window are protocol cost
                // (waiting out a retransmission timeout), not g or
                // unexplained wait.
                for st in &mut seg {
                    if matches!(st.kind, StepKind::Wait | StepKind::G) {
                        st.kind = StepKind::Retry;
                    }
                }
                t.cause
            }
        };
        rev_nodes.push(seg);
        node = match cause {
            Cause::Start => break,
            Cause::Msg(id) => Node::Msg(id as usize),
            Cause::Compute(id) => Node::Comp(id as usize),
            Cause::Barrier(id) => Node::Bar(id as usize),
            Cause::Retry(id) => Node::Timer(id as usize),
        };
    }

    // Time order, merging contiguous same-class segments on one proc.
    let mut steps: Vec<PathStep> = Vec::new();
    let mut components = Components::default();
    for step in rev_nodes.into_iter().rev().flatten() {
        components.add(step.kind, step.cycles());
        match steps.last_mut() {
            Some(last)
                if last.kind == step.kind && last.proc == step.proc && last.end == step.start =>
            {
                last.end = step.end;
            }
            _ => steps.push(step),
        }
    }
    debug_assert_eq!(
        components.sum(),
        total,
        "path segments must tile [0, total)"
    );
    Some(CritPath {
        total,
        components,
        steps,
    })
}

// ---------------------------------------------------------------------------
// Online aggregation (streaming observability)
// ---------------------------------------------------------------------------

/// Incremental o/g/L/compute/stall/retry accounting maintained while
/// lifecycle records stream out of the engine (`SimConfig::aggregate`) —
/// the paper's Fig 3/Fig 4-style decomposition for runs too large to
/// retain an [`crate::obs::ObsLog`].
///
/// Two views coexist:
///
/// * **activity totals** — `global`, `per_proc`, and the time-binned
///   `bins` accumulate every activity span by class (`o`, `compute`,
///   `stall`, `barrier`); `global.l` additionally accumulates the network
///   flight of every delivered message. These are order-independent, so
///   they are identical for every lane count of the sharded engine.
/// * **the critical path** — `critical_total`/`critical` reproduce
///   [`critical_path`]'s decomposition of the terminal event's causal
///   chain, computed forward (each record's cumulative components are its
///   cause's plus its own wait-window attribution) instead of backward.
///   On the classic engine this matches [`critical_path`] cycle-exactly;
///   the one divergence is a timer firing inside a still-open barrier or
///   stall span, whose busy cycles the online pass cannot yet see
///   (documented in docs/OBSERVABILITY.md).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsAggregate {
    /// Activity totals by class across the whole machine (plus `l` =
    /// total delivered flight cycles).
    pub global: Components,
    /// Activity totals per processor.
    pub per_proc: Vec<Components>,
    /// Bin width of `bins` in cycles (`0` = time-binning off).
    pub grid: Cycles,
    /// Activity totals per `grid`-cycle time bin (spans split exactly at
    /// bin boundaries).
    pub bins: Vec<Components>,
    /// Message records created (including fault-dropped sends).
    pub msgs: u64,
    /// Messages delivered.
    pub delivered: u64,
    pub computes: u64,
    pub barriers: u64,
    /// Timers armed.
    pub timers: u64,
    /// Records handed to the sink after sampling.
    pub emitted: u64,
    /// Completion instant of the terminal event (= `critical.sum()`).
    pub critical_total: Cycles,
    /// Critical-path decomposition of the terminal event's causal chain.
    pub critical: Components,
}

/// The engine-side state behind [`ObsAggregate`]: per-processor span
/// buffers pruned to the earliest outstanding wait window (`floors`),
/// cumulative path components per live causal record (`cps`, refcounted
/// by the commands that still cite them), and the running terminal
/// candidate.
pub(crate) struct OnlineAgg {
    pub(crate) agg: ObsAggregate,
    /// First processor this aggregate covers: `spans`, `floors`, and
    /// `agg.per_proc` are indexed `[p - first]`. `0` for a whole-machine
    /// aggregate; a lane's range base for the parallel engine's per-lane
    /// aggregates (merged with [`OnlineAgg::absorb`] at the end of the
    /// run).
    first: usize,
    /// Per-processor activity spans, start-ordered, pruned below the
    /// processor's earliest outstanding window start.
    spans: Vec<Vec<Span>>,
    /// Multiset of outstanding window starts per processor (command
    /// submits awaiting execution, arrivals awaiting reception).
    floors: Vec<std::collections::BTreeMap<Cycles, u32>>,
    /// Cumulative critical-path components per live record, keyed by
    /// [`OnlineAgg::cause_key`].
    cps: std::collections::HashMap<u64, Components>,
    /// Commands still citing each record as their cause.
    rc: std::collections::HashMap<u64, i64>,
    /// The base components of the most recently dequeued command's cause
    /// (copied at `pop_meta` time, before any eviction).
    pub(crate) pending_base: Components,
    /// `(submit, base)` per processor currently waiting in the barrier.
    barrier_bases: std::collections::HashMap<ProcId, (Cycles, Components)>,
    /// Best terminal candidate: `(completion, kind-rank, id)` max, with
    /// its cumulative components captured at completion time.
    best: Option<(Cycles, u8, u64, Components)>,
    scratch: Vec<PathStep>,
}

impl OnlineAgg {
    pub(crate) fn new(p: usize, grid: Cycles) -> Self {
        Self::for_range(0, p, grid)
    }

    /// Aggregate covering processors `[first, first + len)` only. All
    /// per-lane state is independent of the other lanes': span/floor
    /// windows are strictly lane-local, and the `cps`/`rc` refcount maps
    /// are keyed by records whose citing commands run on this lane (a
    /// cross-lane message's record migrates to the destination lane with
    /// its cumulative components, so its key is only ever live in one
    /// aggregate — barrier keys excepted, which every lane receives via
    /// [`OnlineAgg::on_barrier_external`]).
    pub(crate) fn for_range(first: usize, len: usize, grid: Cycles) -> Self {
        OnlineAgg {
            agg: ObsAggregate {
                per_proc: vec![Components::default(); len],
                grid,
                ..Default::default()
            },
            first,
            spans: vec![Vec::new(); len],
            floors: vec![std::collections::BTreeMap::new(); len],
            cps: std::collections::HashMap::new(),
            rc: std::collections::HashMap::new(),
            pending_base: Components::default(),
            barrier_bases: std::collections::HashMap::new(),
            best: None,
            scratch: Vec::new(),
        }
    }

    /// Index of `p` into the range-local vectors.
    #[inline]
    fn pi(&self, p: ProcId) -> usize {
        p as usize - self.first
    }

    /// Merge a lane aggregate into this whole-machine one. Activity
    /// totals and record counts are order-independent sums; `per_proc`
    /// slots accumulate into this aggregate's disjoint range; the
    /// terminal candidate is the same `(t, kind, id)` max the serial
    /// engine would have kept.
    pub(crate) fn absorb(&mut self, other: OnlineAgg) {
        self.agg.global.accum(&other.agg.global);
        for (i, c) in other.agg.per_proc.iter().enumerate() {
            self.agg.per_proc[other.first + i].accum(c);
        }
        if self.agg.bins.len() < other.agg.bins.len() {
            self.agg
                .bins
                .resize(other.agg.bins.len(), Components::default());
        }
        for (b, ob) in self.agg.bins.iter_mut().zip(&other.agg.bins) {
            b.accum(ob);
        }
        self.agg.msgs += other.agg.msgs;
        self.agg.delivered += other.agg.delivered;
        self.agg.computes += other.agg.computes;
        self.agg.barriers += other.agg.barriers;
        self.agg.timers += other.agg.timers;
        if let Some((t, k, i, cum)) = other.best {
            self.consider(t, k, i, &cum);
        }
    }

    /// Pack a [`Cause`] into a map key: 3 kind bits over the 41-bit id
    /// space of structured streaming ids. `None` for roots.
    fn cause_key(c: Cause) -> Option<u64> {
        match c {
            Cause::Start => None,
            Cause::Msg(id) => Some((1 << 61) | id),
            Cause::Compute(id) => Some((2 << 61) | id),
            Cause::Barrier(id) => Some((3 << 61) | id),
            Cause::Retry(id) => Some((4 << 61) | id),
        }
    }

    /// A handler triggered by `cause` queued `issued` commands on `p` at
    /// time `now`.
    pub(crate) fn on_push(&mut self, p: ProcId, cause: Cause, now: Cycles, issued: usize) {
        if let Some(key) = Self::cause_key(cause) {
            *self.rc.entry(key).or_insert(0) += issued as i64;
        }
        let i = self.pi(p);
        *self.floors[i].entry(now).or_insert(0) += issued as u32;
    }

    /// A command citing `cause` was dequeued: capture its base components
    /// and release one reference.
    pub(crate) fn on_pop(&mut self, cause: Cause) {
        let Some(key) = Self::cause_key(cause) else {
            self.pending_base = Components::default();
            return;
        };
        self.pending_base = self.cps.get(&key).copied().unwrap_or_default();
        if let Some(n) = self.rc.get_mut(&key) {
            *n -= 1;
            if *n <= 0 {
                self.rc.remove(&key);
                self.cps.remove(&key);
            }
        }
    }

    /// A handler triggered by `cause` issued no commands: nothing will
    /// ever cite the record again. Barrier causes are shared by every
    /// released processor and stay (bounded by the barrier count).
    pub(crate) fn on_leaf(&mut self, cause: Cause) {
        if matches!(cause, Cause::Barrier(_)) {
            return;
        }
        if let Some(key) = Self::cause_key(cause) {
            if !self.rc.contains_key(&key) {
                self.cps.remove(&key);
            }
        }
    }

    /// Record one activity span into the totals and the window buffer.
    pub(crate) fn on_span(&mut self, sp: &Span) {
        let kind = StepKind::from_activity(sp.activity);
        let len = sp.end - sp.start;
        self.agg.global.add(kind, len);
        let p = self.pi(sp.proc);
        self.agg.per_proc[p].add(kind, len);
        if self.agg.grid > 0 {
            // Split exactly at bin boundaries so binning is independent
            // of emission order.
            let g = self.agg.grid;
            let mut cur = sp.start;
            while cur < sp.end {
                let bin = (cur / g) as usize;
                if self.agg.bins.len() <= bin {
                    self.agg.bins.resize(bin + 1, Components::default());
                }
                let seg = sp.end.min((cur / g + 1) * g);
                self.agg.bins[bin].add(kind, seg - cur);
                cur = seg;
            }
        }
        self.spans[p].push(*sp);
        if self.spans[p].len() > 64 {
            // Spans wholly before both the earliest outstanding window
            // and this span's start can never be attributed again.
            let bound = self.floors[p]
                .keys()
                .next()
                .copied()
                .unwrap_or(Cycles::MAX)
                .min(sp.start);
            let keep = self.spans[p].partition_point(|s| s.end <= bound);
            if keep > 0 {
                self.spans[p].drain(..keep);
            }
        }
    }

    /// Remove one outstanding-window entry at `t` on `p` (tolerates a
    /// missing entry: crash cleanup abandons windows wholesale).
    fn remove_floor(&mut self, p: ProcId, t: Cycles) {
        let i = self.pi(p);
        if let Some(n) = self.floors[i].get_mut(&t) {
            *n -= 1;
            if *n == 0 {
                self.floors[i].remove(&t);
            }
        }
    }

    /// Classify the wait window `[from, to)` on `proc` into `cum`
    /// ([`attribute_window`] semantics; `retry` remaps idle to
    /// [`StepKind::Retry`] as the backward walk does for timer windows).
    fn window(
        &mut self,
        proc: ProcId,
        from: Cycles,
        to: Cycles,
        gate: Cycles,
        retry: bool,
        cum: &mut Components,
    ) {
        self.scratch.clear();
        attribute_window(
            &self.spans[proc as usize - self.first],
            proc,
            from,
            to,
            gate,
            &mut self.scratch,
        );
        for st in &self.scratch {
            let kind = match st.kind {
                StepKind::G | StepKind::Wait if retry => StepKind::Retry,
                k => k,
            };
            cum.add(kind, st.cycles());
        }
    }

    fn consider(&mut self, t: Cycles, kind: u8, id: u64, cum: &Components) {
        let better = match &self.best {
            None => true,
            Some((bt, bk, bi, _)) => (t, kind, id) > (*bt, *bk, *bi),
        };
        if better {
            self.best = Some((t, kind, id, *cum));
        }
    }

    /// A message committed its injection: attribute the source-side wait
    /// window plus the send overhead and flight, and return the partial
    /// cumulative components to ride with the in-flight record.
    /// `dup` marks the fault layer's trailing duplicate, which shares its
    /// original's submit (whose floor entry was already consumed).
    pub(crate) fn on_send(&mut self, m: &crate::obs::MsgRecord, dup: bool) -> Components {
        let mut cum = self.pending_base;
        self.window(m.src, m.submit, m.inject, m.send_gate, false, &mut cum);
        cum.add(StepKind::O, m.sent - m.inject);
        cum.add(StepKind::L, m.arrive - m.sent);
        if !dup {
            self.remove_floor(m.src, m.submit);
        }
        self.agg.msgs += 1;
        cum
    }

    /// The fault layer dropped a send in flight: account the record,
    /// release its window.
    pub(crate) fn on_lost(&mut self, src: ProcId, submit: Cycles, dup: bool) {
        if !dup {
            self.remove_floor(src, submit);
        }
        self.agg.msgs += 1;
    }

    /// A message reached its destination's interface: its reception wait
    /// window opens at `t`.
    pub(crate) fn on_arrival(&mut self, dst: ProcId, t: Cycles) {
        let i = self.pi(dst);
        *self.floors[i].entry(t).or_insert(0) += 1;
    }

    /// Reception began: attribute the destination-side wait window.
    pub(crate) fn on_reception(&mut self, m: &crate::obs::MsgRecord, cum: &mut Components) {
        let (arrive, recv_start) = (m.arrive, m.recv_start);
        self.window(m.dst, arrive, recv_start, m.recv_gate, false, cum);
        self.remove_floor(m.dst, arrive);
    }

    /// Delivery completed: close the record's components, publish them
    /// for the handler's commands, and consider it as the terminal.
    pub(crate) fn on_delivery(&mut self, m: &crate::obs::MsgRecord, mut cum: Components) {
        cum.add(StepKind::O, m.deliver - m.recv_start);
        self.agg.global.add(StepKind::L, m.arrive - m.sent);
        self.consider(m.deliver, 0, m.id, &cum);
        self.cps.insert((1 << 61) | m.id, cum);
        self.agg.delivered += 1;
    }

    /// A compute committed: its record is complete at creation (the end
    /// is scheduled), so everything happens here.
    pub(crate) fn on_compute(&mut self, c: &crate::obs::ComputeRecord) {
        let mut cum = self.pending_base;
        self.window(c.proc, c.submit, c.start, c.submit, false, &mut cum);
        cum.add(StepKind::Compute, c.end - c.start);
        self.remove_floor(c.proc, c.submit);
        self.consider(c.end, 1, c.id, &cum);
        self.cps.insert((2 << 61) | c.id, cum);
        self.agg.computes += 1;
    }

    /// A processor entered the barrier: park its submit and base until
    /// release decides the binding entrant.
    pub(crate) fn on_barrier_enter(&mut self, p: ProcId, submit: Cycles) {
        self.barrier_bases.insert(p, (submit, self.pending_base));
    }

    /// The barrier released: attribute the binding entrant's window and
    /// the barrier cost, release every entrant's window. Returns the
    /// barrier record's cumulative components so the parallel engine's
    /// coordinator can replicate them into the other lanes' aggregates
    /// (every released processor's next command cites the barrier as its
    /// cause, whatever lane it lives on).
    pub(crate) fn on_barrier_release(&mut self, b: &crate::obs::BarrierRecord) -> Components {
        let (_, base) = self
            .barrier_bases
            .get(&b.last_proc)
            .copied()
            .unwrap_or_default();
        let mut cum = base;
        self.window(b.last_proc, b.submit, b.enter, b.submit, false, &mut cum);
        cum.add(StepKind::Barrier, b.release - b.enter);
        self.consider(b.release, 2, b.id, &cum);
        self.cps.insert((3 << 61) | b.id, cum);
        for (p, (submit, _)) in std::mem::take(&mut self.barrier_bases) {
            self.remove_floor(p, submit);
        }
        self.agg.barriers += 1;
        cum
    }

    /// A barrier bound on another lane released: publish its cumulative
    /// components under the shared [`Cause::Barrier`] key and close this
    /// lane's entrants' windows. The binding lane already did
    /// [`OnlineAgg::on_barrier_release`] (terminal candidate + count), so
    /// neither happens here.
    pub(crate) fn on_barrier_external(&mut self, id: u64, cum: Components) {
        self.cps.insert((3 << 61) | id, cum);
        for (p, (submit, _)) in std::mem::take(&mut self.barrier_bases) {
            self.remove_floor(p, submit);
        }
    }

    /// A timer was armed (accounting only; its window stays open until
    /// the fire).
    pub(crate) fn on_timer_armed(&mut self) {
        self.agg.timers += 1;
    }

    /// A timer fired: attribute its arming window with idle remapped to
    /// `retry`, and publish the cumulative components under the
    /// [`Cause::Retry`] key.
    pub(crate) fn on_timer_fire(&mut self, t: &crate::obs::TimerRecord, base: Components) {
        let mut cum = base;
        self.window(t.proc, t.submit, t.fire, t.submit, true, &mut cum);
        self.remove_floor(t.proc, t.submit);
        self.cps.insert((4 << 61) | t.id, cum);
    }

    /// Close the aggregate: capture the terminal candidate's path.
    pub(crate) fn finish(mut self, emitted: u64) -> ObsAggregate {
        if let Some((t, _, _, cum)) = self.best.take() {
            self.agg.critical_total = t;
            self.agg.critical = cum;
        }
        self.agg.emitted = emitted;
        self.agg
    }
}

impl Components {
    fn json(&self) -> String {
        format!(
            "{{\"o\":{},\"g\":{},\"l\":{},\"compute\":{},\"stall\":{},\"barrier\":{},\"wait\":{},\"retry\":{}}}",
            self.o, self.g, self.l, self.compute, self.stall, self.barrier, self.wait, self.retry
        )
    }
}

impl ObsAggregate {
    /// Render the aggregate as JSON: record counts, the global activity
    /// totals, the critical-path decomposition, and the time bins.
    /// `per_proc` is deliberately omitted — at `P = 10^6` it would be
    /// the one unbounded part of an otherwise bounded artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"msgs\": {},\n  \"delivered\": {},\n  \"computes\": {},\n  \"barriers\": {},\n  \"timers\": {},\n  \"emitted\": {},\n",
            self.msgs, self.delivered, self.computes, self.barriers, self.timers, self.emitted
        );
        let _ = writeln!(s, "  \"global\": {},", self.global.json());
        let _ = writeln!(s, "  \"critical_total\": {},", self.critical_total);
        let _ = writeln!(s, "  \"critical\": {},", self.critical.json());
        let _ = writeln!(s, "  \"grid\": {},", self.grid);
        s.push_str("  \"bins\": [");
        for (i, b) in self.bins.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.json());
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Sim;
    use crate::message::Data;
    use crate::process::{Ctx, Process, StartFn};
    use logp_core::LogP;

    #[test]
    fn empty_log_has_no_path() {
        assert!(critical_path(&SimResult::default()).is_none());
    }

    #[test]
    fn single_ping_is_o_l_o() {
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let mut sim = Sim::new(model, SimConfig::default().with_msg_log(true));
        sim.set_process(
            0,
            Box::new(StartFn(|ctx: &mut Ctx<'_>| {
                ctx.send(1, 0, Data::U64(1));
            })),
        );
        let res = sim.run().unwrap();
        let cp = critical_path(&res).expect("one message on the path");
        assert_eq!(cp.total, model.point_to_point());
        assert_eq!(cp.components.o, 2 * model.o);
        assert_eq!(cp.components.l, model.l);
        assert_eq!(cp.components.sum(), cp.total);
        // o [0,2), L [2,8), o [8,10).
        assert_eq!(cp.steps.len(), 3);
        assert_eq!(cp.steps[1].kind, StepKind::L);
        assert!(cp.render().contains("critical path: 10 cycles"));
    }

    #[test]
    fn gap_limited_sends_show_g() {
        // P0 sends two messages to P1 back-to-back: the second waits for
        // the gap. Terminal is the second delivery at o + g + L + o... or
        // rather inject at g (g > o), so total = g + o + L + o.
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let mut sim = Sim::new(model, SimConfig::default().with_msg_log(true));
        sim.set_process(
            0,
            Box::new(StartFn(|ctx: &mut Ctx<'_>| {
                ctx.send(1, 0, Data::Empty);
                ctx.send(1, 1, Data::Empty);
            })),
        );
        let res = sim.run().unwrap();
        let cp = critical_path(&res).unwrap();
        assert_eq!(cp.total, model.g + model.o + model.l + model.o);
        // The [o, g) idle slice of the wait window is attributed to g.
        assert_eq!(cp.components.g, model.g - model.o);
        assert_eq!(cp.components.sum(), cp.total);
    }

    #[test]
    fn compute_chains_through_causes() {
        struct ComputeThenSend;
        impl Process for ComputeThenSend {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.me() == 0 {
                    ctx.compute(50, 7);
                }
            }
            fn on_compute_done(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
                ctx.send(1, 0, Data::Empty);
            }
        }
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let mut sim = Sim::new(model, SimConfig::default().with_msg_log(true));
        sim.set_all(|_| Box::new(ComputeThenSend));
        let res = sim.run().unwrap();
        let cp = critical_path(&res).unwrap();
        assert_eq!(cp.total, 50 + model.point_to_point());
        assert_eq!(cp.components.compute, 50);
        assert_eq!(cp.components.o, 2 * model.o);
        assert_eq!(cp.components.l, model.l);
    }

    #[test]
    fn barrier_appears_on_path() {
        struct BarrierThenSend;
        impl Process for BarrierThenSend {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.me() == 0 {
                    ctx.compute(10, 0);
                } else {
                    ctx.barrier();
                }
            }
            fn on_compute_done(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
                ctx.barrier();
            }
            fn on_barrier_release(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.me() == 0 {
                    ctx.send(1, 0, Data::Empty);
                }
            }
        }
        let model = LogP::new(6, 2, 4, 2).unwrap();
        let config = SimConfig {
            barrier_cost: 5,
            ..SimConfig::default()
        }
        .with_msg_log(true);
        let mut sim = Sim::new(model, config);
        sim.set_all(|_| Box::new(BarrierThenSend));
        let res = sim.run().unwrap();
        let cp = critical_path(&res).unwrap();
        // compute 10, barrier cost 5, then 2o + L.
        assert_eq!(cp.total, 10 + 5 + model.point_to_point());
        assert_eq!(cp.components.barrier, 5);
        assert_eq!(cp.components.compute, 10);
        assert_eq!(cp.components.sum(), cp.total);
    }
}
