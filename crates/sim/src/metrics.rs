//! A small metrics registry for simulator runs: monotonic counters,
//! grid-sampled time-series gauges, and log-bucketed histograms.
//!
//! Everything is integer-valued so [`MetricsRegistry`] keeps `Eq` (and so
//! results that embed it stay hashable/comparable); fractional quantities
//! such as utilization are stored in fixed point (parts-per-1024, see
//! [`PPK_SCALE`]). Export is hand-rolled JSON ([`MetricsRegistry::to_json`])
//! and CSV ([`MetricsRegistry::to_csv`]) — the vendored `serde` is a no-op,
//! so there is no derive-based serialization in this workspace.

use logp_core::Cycles;
use std::fmt::Write as _;

/// Fixed-point denominator for ratio-valued gauges (utilization):
/// a gauge value of 1024 means 100%.
pub const PPK_SCALE: u64 = 1024;

/// Handle to a counter created with [`MetricsRegistry::counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge created with [`MetricsRegistry::gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a histogram created with [`MetricsRegistry::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Counter {
    name: String,
    value: u64,
}

/// A time series sampled on the metrics cycle grid: `(t, value)` pairs in
/// nondecreasing `t` order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gauge {
    pub name: String,
    pub samples: Vec<(Cycles, u64)>,
}

/// Log₂-bucketed histogram: bucket `i` counts values `v` with
/// `bucket_index(v) == i`, i.e. `v == 0` in bucket 0 and
/// `2^(i-1) <= v < 2^i` in bucket `i ≥ 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub name: String,
    pub buckets: [u64; 65],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Histogram {
    fn new(name: &str) -> Self {
        Histogram {
            name: name.to_string(),
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, otherwise `⌊log₂ v⌋ + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean as (sum, count); callers divide if they want a float.
    pub fn mean_parts(&self) -> (u64, u64) {
        (self.sum, self.count)
    }
}

/// The registry: create instruments up front (cheap `usize` handles), feed
/// them during the run, export afterward.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    hists: Vec<Histogram>,
}

impl MetricsRegistry {
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push(Counter {
            name: name.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push(Gauge {
            name: name.to_string(),
            samples: Vec::new(),
        });
        GaugeId(self.gauges.len() - 1)
    }

    pub fn histogram(&mut self, name: &str) -> HistId {
        self.hists.push(Histogram::new(name));
        HistId(self.hists.len() - 1)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    #[inline]
    pub fn sample(&mut self, id: GaugeId, t: Cycles, value: u64) {
        self.gauges[id.0].samples.push((t, value));
    }

    #[inline]
    pub fn observe(&mut self, id: HistId, value: u64) {
        self.hists[id.0].record(value);
    }

    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    pub fn gauge_series(&self, name: &str) -> Option<&Gauge> {
        self.gauges.iter().find(|g| g.name == name)
    }

    pub fn histogram_named(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|h| h.name == name)
    }

    pub fn gauges(&self) -> &[Gauge] {
        &self.gauges
    }

    /// Export every instrument as a JSON object:
    /// `{"counters": {...}, "gauges": {name: [[t,v],...]}, "histograms":
    /// {name: {count,sum,min,max,buckets:[[lo,count],...]}}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", c.name, c.value);
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": [", g.name);
            for (j, (t, v)) in g.samples.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{t},{v}]");
            }
            s.push(']');
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = write!(
                s,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.name, h.count, h.sum, min, h.max
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let _ = write!(s, "[{},{}]", Histogram::bucket_lo(b), n);
                }
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Merge another registry created with the identical instrument
    /// layout (same create calls in the same order — the parallel
    /// engine's per-lane registries, built by the same constructor as the
    /// parent's): counters and histogram cells add, gauge samples append
    /// (lane registries never sample gauges — the sharded engine requires
    /// `metrics_grid == 0`), and min/max fold.
    pub(crate) fn absorb(&mut self, other: &MetricsRegistry) {
        debug_assert_eq!(self.counters.len(), other.counters.len());
        debug_assert_eq!(self.gauges.len(), other.gauges.len());
        debug_assert_eq!(self.hists.len(), other.hists.len());
        for (c, oc) in self.counters.iter_mut().zip(&other.counters) {
            c.value += oc.value;
        }
        for (g, og) in self.gauges.iter_mut().zip(&other.gauges) {
            g.samples.extend_from_slice(&og.samples);
        }
        for (h, oh) in self.hists.iter_mut().zip(&other.hists) {
            for (b, ob) in h.buckets.iter_mut().zip(&oh.buckets) {
                *b += ob;
            }
            h.count += oh.count;
            h.sum += oh.sum;
            h.min = h.min.min(oh.min);
            h.max = h.max.max(oh.max);
        }
    }

    /// Flat CSV export: `kind,name,a,b` rows — counters (`name,value,`),
    /// gauge samples (`name,t,value`), histogram buckets
    /// (`name,bucket_lo,count`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("kind,name,a,b\n");
        for c in &self.counters {
            let _ = writeln!(s, "counter,{},{},", c.name, c.value);
        }
        for g in &self.gauges {
            for (t, v) in &g.samples {
                let _ = writeln!(s, "gauge,{},{t},{v}", g.name);
            }
        }
        for h in &self.hists {
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    let _ = writeln!(s, "hist,{},{},{n}", h.name, Histogram::bucket_lo(b));
                }
            }
        }
        s
    }
}

/// Host-side self-telemetry for one engine run: how fast the engine
/// itself ran, not what the simulated machine did.
///
/// Collected by both engines at negligible cost (a wall-clock read plus
/// counters the sharded engine already touches) and reported through
/// [`SimResult::vitals`](crate::engine::SimResult). Vitals describe the
/// *host* execution, so they vary run to run and lane count to lane
/// count; they are deliberately excluded from `SimResult` equality and
/// never inserted into `SimResult::metrics` (which must stay
/// lane-count-invariant). Benches merge them into artifacts via
/// [`EngineVitals::install`] or `to_json` at write time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineVitals {
    /// Which engine ran: `"classic"` or `"sharded"`.
    pub engine: &'static str,
    /// Host wall-clock time for the event loop, in nanoseconds.
    pub wall_ns: u64,
    /// Total simulated events processed (same as `SimStats::events`).
    pub events: u64,
    /// Number of event lanes (1 for the classic engine).
    pub lanes: u32,
    /// Events processed per lane (sharded engine only; empty for
    /// classic).
    pub lane_events: Vec<u64>,
    /// Lookahead windows executed (sharded engine only; 0 for classic).
    pub windows: u64,
    /// Quiescence fast-forwards: windows whose start was advanced past
    /// empty simulated time to the global next-event instant.
    pub fast_forwards: u64,
    /// Deepest calendar bucket drained in one per-cycle batch.
    pub bucket_depth_max: u64,
    /// Events that overflowed a lane's calendar ring into the `far`
    /// heap.
    pub far_spills: u64,
    /// Arena regrowths observed during the run (debug builds count
    /// them; release builds report 0).
    pub arena_reallocs: u64,
    /// Worker threads the lanes ran on (0 = serial execution — the
    /// classic engine or the single-threaded sharded driver).
    pub workers: u32,
    /// Per-lane host wall-clock time in nanoseconds, summed over every
    /// window phase that lane executed (parallel engine only; empty
    /// otherwise).
    pub lane_wall_ns: Vec<u64>,
    /// Host nanoseconds the coordinator spent waiting at window barriers
    /// for the slowest lane (parallel engine only).
    pub barrier_wait_ns: u64,
    /// 1 when the run silently relaxed `SimConfig::enforce_capacity`
    /// because the sharded engine doesn't implement the capacity stall
    /// protocol (see the one-time warning on stderr).
    pub capacity_relaxed: u64,
}

impl Default for EngineVitals {
    fn default() -> Self {
        EngineVitals {
            engine: "classic",
            wall_ns: 0,
            events: 0,
            lanes: 1,
            lane_events: Vec::new(),
            windows: 0,
            fast_forwards: 0,
            bucket_depth_max: 0,
            far_spills: 0,
            arena_reallocs: 0,
            workers: 0,
            lane_wall_ns: Vec::new(),
            barrier_wait_ns: 0,
            capacity_relaxed: 0,
        }
    }
}

impl EngineVitals {
    /// Simulated events per host second (0.0 when the run was too fast
    /// to time).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_ns as f64
    }

    /// Mean events per lookahead window (sharded engine; 0.0 for
    /// classic).
    pub fn occupancy(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.events as f64 / self.windows as f64
    }

    /// Lane load-imbalance ratio: busiest lane over mean lane load
    /// (1.0 = perfectly balanced; 0.0 when there are no lanes).
    pub fn imbalance(&self) -> f64 {
        if self.lane_events.is_empty() {
            return 0.0;
        }
        let max = *self.lane_events.iter().max().unwrap() as f64;
        let avg = self.lane_events.iter().sum::<u64>() as f64 / self.lane_events.len() as f64;
        if avg == 0.0 {
            return 0.0;
        }
        max / avg
    }

    /// Wall-clock load-imbalance ratio across worker-executed lanes:
    /// slowest lane's window-time over the mean (1.0 = perfectly
    /// balanced; 0.0 when the run wasn't parallel).
    pub fn wall_imbalance(&self) -> f64 {
        if self.lane_wall_ns.is_empty() {
            return 0.0;
        }
        let max = *self.lane_wall_ns.iter().max().unwrap() as f64;
        let avg = self.lane_wall_ns.iter().sum::<u64>() as f64 / self.lane_wall_ns.len() as f64;
        if avg == 0.0 {
            return 0.0;
        }
        max / avg
    }

    /// Export as a standalone JSON object (the `--vitals-out` artifact
    /// schema; see `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"engine\": \"{}\",", self.engine);
        let _ = writeln!(s, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"events_per_sec\": {:.1},", self.events_per_sec());
        let _ = writeln!(s, "  \"lanes\": {},", self.lanes);
        s.push_str("  \"lane_events\": [");
        for (i, n) in self.lane_events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push_str("],\n");
        let _ = writeln!(s, "  \"windows\": {},", self.windows);
        let _ = writeln!(s, "  \"window_occupancy\": {:.3},", self.occupancy());
        let _ = writeln!(s, "  \"fast_forwards\": {},", self.fast_forwards);
        let _ = writeln!(s, "  \"bucket_depth_max\": {},", self.bucket_depth_max);
        let _ = writeln!(s, "  \"far_spills\": {},", self.far_spills);
        let _ = writeln!(s, "  \"lane_imbalance\": {:.3},", self.imbalance());
        let _ = writeln!(s, "  \"arena_reallocs\": {},", self.arena_reallocs);
        let _ = writeln!(s, "  \"workers\": {},", self.workers);
        s.push_str("  \"lane_wall_ns\": [");
        for (i, n) in self.lane_wall_ns.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push_str("],\n");
        let _ = writeln!(s, "  \"wall_imbalance\": {:.3},", self.wall_imbalance());
        let _ = writeln!(s, "  \"barrier_wait_ns\": {},", self.barrier_wait_ns);
        let _ = writeln!(s, "  \"capacity_relaxed\": {}", self.capacity_relaxed);
        s.push_str("}\n");
        s
    }

    /// Install the vitals as `vitals_*` counters in a metrics registry.
    /// Intended for artifact assembly only — installing into a
    /// `SimResult`'s registry would break lane-count invariance.
    pub fn install(&self, reg: &mut MetricsRegistry) {
        let pairs: [(&'static str, u64); 11] = [
            ("vitals_wall_ns", self.wall_ns),
            ("vitals_events", self.events),
            ("vitals_lanes", self.lanes as u64),
            ("vitals_windows", self.windows),
            ("vitals_fast_forwards", self.fast_forwards),
            ("vitals_bucket_depth_max", self.bucket_depth_max),
            ("vitals_far_spills", self.far_spills),
            ("vitals_arena_reallocs", self.arena_reallocs),
            ("vitals_workers", self.workers as u64),
            ("vitals_barrier_wait_ns", self.barrier_wait_ns),
            ("vitals_capacity_relaxed", self.capacity_relaxed),
        ];
        for (name, v) in pairs {
            let id = reg.counter(name);
            reg.inc(id, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        let c = m.counter("msgs");
        m.inc(c, 3);
        m.inc(c, 4);
        assert_eq!(m.counter_value("msgs"), Some(7));
        assert_eq!(m.counter_value("nope"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_lo(1), 1);
        assert_eq!(Histogram::bucket_lo(3), 4);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut m = MetricsRegistry::default();
        let h = m.histogram("lat");
        for v in [5u64, 9, 1] {
            m.observe(h, v);
        }
        let hist = m.histogram_named("lat").unwrap();
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, 15);
        assert_eq!(hist.min, 1);
        assert_eq!(hist.max, 9);
        // 5 -> bucket 3 ([4,8)), 9 -> bucket 4 ([8,16)), 1 -> bucket 1.
        assert_eq!(hist.buckets[3], 1);
        assert_eq!(hist.buckets[4], 1);
        assert_eq!(hist.buckets[1], 1);
    }

    #[test]
    fn json_and_csv_contain_instruments() {
        let mut m = MetricsRegistry::default();
        let c = m.counter("delivered");
        let g = m.gauge("inflight");
        let h = m.histogram("lat");
        m.inc(c, 2);
        m.sample(g, 0, 1);
        m.sample(g, 10, 3);
        m.observe(h, 6);
        let json = m.to_json();
        assert!(json.contains("\"delivered\": 2"));
        assert!(json.contains("\"inflight\": [[0,1],[10,3]]"));
        assert!(json.contains("\"lat\""));
        assert!(json.contains("\"buckets\": [[4,1]]"));
        let csv = m.to_csv();
        assert!(csv.contains("counter,delivered,2,"));
        assert!(csv.contains("gauge,inflight,10,3"));
        assert!(csv.contains("hist,lat,4,1"));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let m = MetricsRegistry::default();
        assert!(m.to_json().contains("\"counters\""));
        assert_eq!(m.to_csv(), "kind,name,a,b\n");
    }
}
