//! Message-lifecycle observability: what every message (and compute, and
//! barrier) experienced, with causal links.
//!
//! The LogP paper's methodology is *accounting* — Figure 3 argues
//! optimality by attributing every cycle on the critical path to `o`, `g`
//! or `L`. [`ObsLog`] is the simulator's raw material for that style of
//! argument: when `SimConfig::record_msg_log` is on, the engine records
//! one [`MsgRecord`] per message with its full lifecycle timestamps
//! (submit → capacity-stall → inject → flight → arrival → reception →
//! delivery) and a causal [`Cause`] linking the send back to the handler
//! invocation that issued it. Compute commands and barriers get the same
//! treatment, so the causal graph is complete and
//! [`crate::critpath::critical_path`] can walk it backward from the last
//! event of a run.
//!
//! Everything here is *off by default*: with observability disabled the
//! engine never touches these structures and the hot path stays
//! allocation-free (see the `trace_overhead` bench).

use logp_core::{Cycles, ProcId};

/// Identifier of a [`MsgRecord`] within an [`ObsLog`] (index into `msgs`).
pub type MsgId = u64;

/// Sentinel for a lifecycle timestamp that never happened (e.g. a message
/// still in flight when the run ended).
pub const UNSET: Cycles = Cycles::MAX;

/// What triggered the handler that issued a command — the causal parent
/// edge of the simulation's event DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cause {
    /// The `on_start` handler at time 0 (roots of the DAG).
    #[default]
    Start,
    /// Delivery of the message with this [`MsgId`] (`on_message`).
    Msg(MsgId),
    /// Completion of the compute record with this id (`on_compute_done`).
    Compute(u64),
    /// Release of the barrier record with this id (`on_barrier_release`).
    Barrier(u64),
    /// Firing of the timer record with this id (`on_timer`) — the
    /// retransmission edge of the reliable-delivery layer. A send caused
    /// by a retry carries this edge, so timeout waits are attributable on
    /// the critical path just like `o`, `g` and `L`.
    Retry(u64),
}

/// Full lifecycle of one message.
///
/// Invariants for a delivered message (no jitter):
/// `submit <= inject`, `sent = inject + o`, `arrive = sent + L'`
/// (`L - jitter <= L' <= L`; bulk sends add the `(words-1)·G` stream),
/// `recv_start >= arrive`, `deliver = recv_start + o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// This record's id (its index in [`ObsLog::msgs`]).
    pub id: MsgId,
    pub src: ProcId,
    pub dst: ProcId,
    /// Application tag.
    pub tag: u32,
    /// Payload words (`1` for small messages, the declared length for
    /// LogGP bulk sends).
    pub words: u64,
    /// What triggered the handler that issued this send.
    pub cause: Cause,
    /// Time the `send` command was issued by its handler.
    pub submit: Cycles,
    /// The sender's `next_send_slot` when the send committed — the gap
    /// gate. Waiting attributable to `g` ends here.
    pub send_gate: Cycles,
    /// Time the send overhead began (submit + queueing + gap + stall).
    pub inject: Cycles,
    /// Time the message entered the network (`inject + o`).
    pub sent: Cycles,
    /// Time the message reached the destination's interface ([`UNSET`]
    /// until it happens).
    pub arrive: Cycles,
    /// The receiver's `next_recv_slot` when reception began — the
    /// reception gap gate.
    pub recv_gate: Cycles,
    /// Time reception overhead began ([`UNSET`] until it happens).
    pub recv_start: Cycles,
    /// Time the program observed the message (`recv_start + o`;
    /// [`UNSET`] until it happens).
    pub deliver: Cycles,
}

impl MsgRecord {
    /// End-to-end latency (submit → deliver), if delivered.
    pub fn latency(&self) -> Option<Cycles> {
        (self.deliver != UNSET).then(|| self.deliver - self.submit)
    }

    /// Network flight time (sent → arrive), if arrived.
    pub fn flight(&self) -> Option<Cycles> {
        (self.arrive != UNSET).then(|| self.arrive - self.sent)
    }
}

/// Lifecycle of one `compute` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeRecord {
    /// This record's id (its index in [`ObsLog::computes`]).
    pub id: u64,
    pub proc: ProcId,
    /// The program's tag.
    pub tag: u64,
    /// What triggered the handler that issued this compute.
    pub cause: Cause,
    /// Time the command was issued.
    pub submit: Cycles,
    /// Time execution began.
    pub start: Cycles,
    /// Time execution finished (perturbed duration included).
    pub end: Cycles,
}

/// One global barrier episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierRecord {
    /// This record's id (its index in [`ObsLog::barriers`]).
    pub id: u64,
    /// The last processor to enter (the one that released everyone).
    pub last_proc: ProcId,
    /// When that processor's barrier command was issued.
    pub submit: Cycles,
    /// When it entered the barrier.
    pub enter: Cycles,
    /// When the barrier released (`enter + barrier_cost`).
    pub release: Cycles,
    /// What triggered the handler that issued the binding barrier entry.
    pub cause: Cause,
}

/// Lifecycle of one armed timer ([`crate::process::Ctx::timer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRecord {
    /// This record's id (its index in [`ObsLog::timers`]).
    pub id: u64,
    /// The processor that armed it.
    pub proc: ProcId,
    /// The program's token (for the reliable layer, the in-flight
    /// sequence number with the timer-namespace bit set).
    pub tag: u64,
    /// What triggered the handler that armed this timer.
    pub cause: Cause,
    /// Time the timer command was issued by its handler.
    pub submit: Cycles,
    /// Time the command was dequeued and the countdown started.
    pub armed: Cycles,
    /// Scheduled fire time (`armed + cycles`). Crashed or halted
    /// processors never observe the fire, but the schedule is recorded.
    pub fire: Cycles,
}

/// The complete causal event log of a run. Empty unless
/// `SimConfig::record_msg_log` was set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsLog {
    pub msgs: Vec<MsgRecord>,
    pub computes: Vec<ComputeRecord>,
    pub barriers: Vec<BarrierRecord>,
    pub timers: Vec<TimerRecord>,
}

impl ObsLog {
    /// True when nothing was recorded (observability disabled, or the run
    /// genuinely produced no commands).
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
            && self.computes.is_empty()
            && self.barriers.is_empty()
            && self.timers.is_empty()
    }

    /// Messages delivered before the run ended.
    pub fn delivered(&self) -> impl Iterator<Item = &MsgRecord> {
        self.msgs.iter().filter(|m| m.deliver != UNSET)
    }

    /// Causal ancestry of a message: the chain of [`Cause`]s from `id`
    /// back to a [`Cause::Start`] root, nearest first.
    pub fn ancestry(&self, id: MsgId) -> Vec<Cause> {
        let mut chain = Vec::new();
        let mut cause = match self.msgs.get(id as usize) {
            Some(m) => m.cause,
            None => return chain,
        };
        loop {
            chain.push(cause);
            cause = match cause {
                Cause::Start => break,
                Cause::Msg(m) => self.msgs[m as usize].cause,
                Cause::Compute(c) => self.computes[c as usize].cause,
                Cause::Barrier(b) => self.barriers[b as usize].cause,
                Cause::Retry(t) => self.timers[t as usize].cause,
            };
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: MsgId, cause: Cause) -> MsgRecord {
        MsgRecord {
            id,
            src: 0,
            dst: 1,
            tag: 0,
            words: 1,
            cause,
            submit: 0,
            send_gate: 0,
            inject: 0,
            sent: 2,
            arrive: 8,
            recv_gate: 0,
            recv_start: 8,
            deliver: 10,
        }
    }

    #[test]
    fn latency_and_flight_require_delivery() {
        let mut m = rec(0, Cause::Start);
        assert_eq!(m.latency(), Some(10));
        assert_eq!(m.flight(), Some(6));
        m.deliver = UNSET;
        m.arrive = UNSET;
        assert_eq!(m.latency(), None);
        assert_eq!(m.flight(), None);
    }

    #[test]
    fn ancestry_walks_to_start() {
        let log = ObsLog {
            msgs: vec![rec(0, Cause::Start), rec(1, Cause::Msg(0))],
            ..Default::default()
        };
        assert_eq!(log.ancestry(1), vec![Cause::Msg(0), Cause::Start]);
        assert_eq!(log.ancestry(0), vec![Cause::Start]);
        assert!(log.ancestry(7).is_empty());
    }

    #[test]
    fn empty_log_reports_empty() {
        assert!(ObsLog::default().is_empty());
    }
}
