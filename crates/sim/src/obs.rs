//! Message-lifecycle observability: what every message (and compute, and
//! barrier) experienced, with causal links.
//!
//! The LogP paper's methodology is *accounting* — Figure 3 argues
//! optimality by attributing every cycle on the critical path to `o`, `g`
//! or `L`. [`ObsLog`] is the simulator's raw material for that style of
//! argument: when `SimConfig::record_msg_log` is on, the engine records
//! one [`MsgRecord`] per message with its full lifecycle timestamps
//! (submit → capacity-stall → inject → flight → arrival → reception →
//! delivery) and a causal [`Cause`] linking the send back to the handler
//! invocation that issued it. Compute commands and barriers get the same
//! treatment, so the causal graph is complete and
//! [`crate::critpath::critical_path`] can walk it backward from the last
//! event of a run.
//!
//! Everything here is *off by default*: with observability disabled the
//! engine never touches these structures and the hot path stays
//! allocation-free (see the `trace_overhead` bench).

use crate::trace::Span;
use logp_core::{Cycles, ProcId};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Identifier of a [`MsgRecord`] within an [`ObsLog`] (index into `msgs`).
/// In streaming mode on the sharded engine, ids are *structured*
/// (`(proc + 1) << 40 | seq`) rather than dense; [`ObsLog::canonicalize`]
/// renumbers either form into the canonical dense order.
pub type MsgId = u64;

/// Sentinel for a lifecycle timestamp that never happened (e.g. a message
/// still in flight when the run ended).
pub const UNSET: Cycles = Cycles::MAX;

/// What triggered the handler that issued a command — the causal parent
/// edge of the simulation's event DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cause {
    /// The `on_start` handler at time 0 (roots of the DAG).
    #[default]
    Start,
    /// Delivery of the message with this [`MsgId`] (`on_message`).
    Msg(MsgId),
    /// Completion of the compute record with this id (`on_compute_done`).
    Compute(u64),
    /// Release of the barrier record with this id (`on_barrier_release`).
    Barrier(u64),
    /// Firing of the timer record with this id (`on_timer`) — the
    /// retransmission edge of the reliable-delivery layer. A send caused
    /// by a retry carries this edge, so timeout waits are attributable on
    /// the critical path just like `o`, `g` and `L`.
    Retry(u64),
}

/// Full lifecycle of one message.
///
/// Invariants for a delivered message (no jitter):
/// `submit <= inject`, `sent = inject + o`, `arrive = sent + L'`
/// (`L - jitter <= L' <= L`; bulk sends add the `(words-1)·G` stream),
/// `recv_start >= arrive`, `deliver = recv_start + o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// This record's id (its index in [`ObsLog::msgs`]).
    pub id: MsgId,
    pub src: ProcId,
    pub dst: ProcId,
    /// Application tag.
    pub tag: u32,
    /// Payload words (`1` for small messages, the declared length for
    /// LogGP bulk sends).
    pub words: u64,
    /// What triggered the handler that issued this send.
    pub cause: Cause,
    /// Time the `send` command was issued by its handler.
    pub submit: Cycles,
    /// The sender's `next_send_slot` when the send committed — the gap
    /// gate. Waiting attributable to `g` ends here.
    pub send_gate: Cycles,
    /// Time the send overhead began (submit + queueing + gap + stall).
    pub inject: Cycles,
    /// Time the message entered the network (`inject + o`).
    pub sent: Cycles,
    /// Time the message reached the destination's interface ([`UNSET`]
    /// until it happens).
    pub arrive: Cycles,
    /// The receiver's `next_recv_slot` when reception began — the
    /// reception gap gate.
    pub recv_gate: Cycles,
    /// Time reception overhead began ([`UNSET`] until it happens).
    pub recv_start: Cycles,
    /// Time the program observed the message (`recv_start + o`;
    /// [`UNSET`] until it happens).
    pub deliver: Cycles,
}

impl MsgRecord {
    /// End-to-end latency (submit → deliver), if delivered.
    pub fn latency(&self) -> Option<Cycles> {
        (self.deliver != UNSET).then(|| self.deliver - self.submit)
    }

    /// Network flight time (sent → arrive), if arrived.
    pub fn flight(&self) -> Option<Cycles> {
        (self.arrive != UNSET).then(|| self.arrive - self.sent)
    }
}

/// Lifecycle of one `compute` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeRecord {
    /// This record's id (its index in [`ObsLog::computes`]).
    pub id: u64,
    pub proc: ProcId,
    /// The program's tag.
    pub tag: u64,
    /// What triggered the handler that issued this compute.
    pub cause: Cause,
    /// Time the command was issued.
    pub submit: Cycles,
    /// Time execution began.
    pub start: Cycles,
    /// Time execution finished (perturbed duration included).
    pub end: Cycles,
}

/// One global barrier episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierRecord {
    /// This record's id (its index in [`ObsLog::barriers`]).
    pub id: u64,
    /// The last processor to enter (the one that released everyone).
    pub last_proc: ProcId,
    /// When that processor's barrier command was issued.
    pub submit: Cycles,
    /// When it entered the barrier.
    pub enter: Cycles,
    /// When the barrier released (`enter + barrier_cost`).
    pub release: Cycles,
    /// What triggered the handler that issued the binding barrier entry.
    pub cause: Cause,
}

/// Lifecycle of one armed timer ([`crate::process::Ctx::timer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRecord {
    /// This record's id (its index in [`ObsLog::timers`]).
    pub id: u64,
    /// The processor that armed it.
    pub proc: ProcId,
    /// The program's token (for the reliable layer, the in-flight
    /// sequence number with the timer-namespace bit set).
    pub tag: u64,
    /// What triggered the handler that armed this timer.
    pub cause: Cause,
    /// Time the timer command was issued by its handler.
    pub submit: Cycles,
    /// Time the command was dequeued and the countdown started.
    pub armed: Cycles,
    /// Scheduled fire time (`armed + cycles`). Crashed or halted
    /// processors never observe the fire, but the schedule is recorded.
    pub fire: Cycles,
}

/// The complete causal event log of a run. Empty unless
/// `SimConfig::record_msg_log` was set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsLog {
    pub msgs: Vec<MsgRecord>,
    pub computes: Vec<ComputeRecord>,
    pub barriers: Vec<BarrierRecord>,
    pub timers: Vec<TimerRecord>,
}

impl ObsLog {
    /// True when nothing was recorded (observability disabled, or the run
    /// genuinely produced no commands).
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
            && self.computes.is_empty()
            && self.barriers.is_empty()
            && self.timers.is_empty()
    }

    /// Messages delivered before the run ended.
    pub fn delivered(&self) -> impl Iterator<Item = &MsgRecord> {
        self.msgs.iter().filter(|m| m.deliver != UNSET)
    }

    /// Causal ancestry of a message: the chain of [`Cause`]s from `id`
    /// back to a [`Cause::Start`] root, nearest first.
    pub fn ancestry(&self, id: MsgId) -> Vec<Cause> {
        let mut chain = Vec::new();
        let mut cause = match self.msgs.get(id as usize) {
            Some(m) => m.cause,
            None => return chain,
        };
        loop {
            chain.push(cause);
            cause = match cause {
                Cause::Start => break,
                Cause::Msg(m) => self.msgs[m as usize].cause,
                Cause::Compute(c) => self.computes[c as usize].cause,
                Cause::Barrier(b) => self.barriers[b as usize].cause,
                Cause::Retry(t) => self.timers[t as usize].cause,
            };
        }
        chain
    }

    /// Renumber the log into canonical order: messages by
    /// `(inject, src)`, computes by `(start, proc)`, timers by
    /// `(armed, proc)` (all stable on the previous id, which preserves
    /// per-processor issue order), ids re-assigned densely and every
    /// [`Cause`] remapped. Barriers are already globally ordered by
    /// release and stay put. The sharded engine applies this to every
    /// retained log, and replayed streaming logs apply it so both
    /// presentations of the same run compare equal.
    pub fn canonicalize(&mut self) {
        fn sort_remap<T, K: Ord>(v: &mut [T], key: impl Fn(&T) -> K) -> HashMap<u64, u64>
        where
            T: HasId,
        {
            v.sort_by_key(|r| (key(r), r.id()));
            let mut map = HashMap::with_capacity(v.len());
            for (i, r) in v.iter_mut().enumerate() {
                map.insert(r.id(), i as u64);
                r.set_id(i as u64);
            }
            map
        }
        let mmap = sort_remap(&mut self.msgs, |m| (m.inject, m.src));
        let cmap = sort_remap(&mut self.computes, |c| (c.start, c.proc));
        let tmap = sort_remap(&mut self.timers, |t| (t.armed, t.proc));
        let fix = |c: &mut Cause| match *c {
            Cause::Msg(id) => *c = Cause::Msg(mmap[&id]),
            Cause::Compute(id) => *c = Cause::Compute(cmap[&id]),
            Cause::Retry(id) => *c = Cause::Retry(tmap[&id]),
            Cause::Start | Cause::Barrier(_) => {}
        };
        for m in &mut self.msgs {
            fix(&mut m.cause);
        }
        for c in &mut self.computes {
            fix(&mut c.cause);
        }
        for b in &mut self.barriers {
            fix(&mut b.cause);
        }
        for t in &mut self.timers {
            fix(&mut t.cause);
        }
    }
}

/// Record types that carry a rewritable id (canonicalization plumbing).
trait HasId {
    fn id(&self) -> u64;
    fn set_id(&mut self, id: u64);
}

macro_rules! has_id {
    ($($t:ty),*) => {$(
        impl HasId for $t {
            fn id(&self) -> u64 {
                self.id
            }
            fn set_id(&mut self, id: u64) {
                self.id = id;
            }
        }
    )*};
}
has_id!(MsgRecord, ComputeRecord, TimerRecord);

// ---------------------------------------------------------------------------
// Streaming sinks
// ---------------------------------------------------------------------------

/// Where streaming lifecycle records go. Carried by `SimConfig`, so it
/// must be cheap to clone and comparable (the sink itself is built by the
/// engine at run start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkSpec {
    /// Discard records (useful with `SimConfig::aggregate`: the online
    /// aggregate is maintained and nothing is retained or written).
    Null,
    /// One JSON object per line per record, written incrementally.
    /// [`replay_jsonl`] parses the file back into an [`ObsLog`].
    Jsonl(PathBuf),
    /// A Perfetto `trace_event` JSON written incrementally (bounded
    /// memory: slices and flows stream out as they complete).
    Perfetto(PathBuf),
}

impl SinkSpec {
    /// Construct the sink this spec describes. File-creation errors are
    /// latched inside the sink and surface from [`ObsSink::finish`] (as
    /// the run's `SimError::Sink`).
    pub fn build(&self) -> Box<dyn ObsSink> {
        match self {
            SinkSpec::Null => Box::new(NullSink),
            SinkSpec::Jsonl(p) => Box::new(JsonlSink::create(p)),
            SinkSpec::Perfetto(p) => Box::new(crate::perfetto::PerfettoSink::create(p)),
        }
    }
}

/// A streaming consumer of lifecycle records. When a sink is configured,
/// records flow here the moment they complete instead of accumulating in
/// [`ObsLog`] — `SimResult::obs` stays empty and memory stays bounded by
/// the number of *in-flight* messages, not the total sent.
///
/// Calls arrive in engine order (deterministic for a fixed config, but on
/// the sharded engine dependent on the lane count; canonicalize replayed
/// logs before comparing across lane counts).
///
/// Sinks must be `Send` so the engine's parallel lane executor can stage
/// records on worker threads; the sink itself is only ever *called* from
/// one thread at a time (the coordinator), in the same order as a serial
/// run, so implementations need no internal synchronization.
pub trait ObsSink: Send {
    fn on_msg(&mut self, _m: &MsgRecord) {}
    fn on_compute(&mut self, _c: &ComputeRecord) {}
    fn on_barrier(&mut self, _b: &BarrierRecord) {}
    fn on_timer(&mut self, _t: &TimerRecord) {}
    fn on_span(&mut self, _s: &Span) {}
    /// Flush and close. Deferred I/O errors surface here (as the run's
    /// `SimError::Sink`).
    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// A sink that drops everything (the aggregation-only configuration).
#[derive(Debug, Default)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// Streaming JSONL writer: one record per line, kinds `m` (message), `c`
/// (compute), `b` (barrier), `t` (timer), `s` (activity span). Timestamps
/// print as raw `u64` (so [`UNSET`] round-trips exactly).
pub struct JsonlSink {
    out: Option<std::io::BufWriter<std::fs::File>>,
    err: Option<String>,
    buf: String,
}

impl JsonlSink {
    pub fn create(path: &Path) -> Self {
        let (out, err) = match std::fs::File::create(path) {
            Ok(f) => (Some(std::io::BufWriter::new(f)), None),
            Err(e) => (None, Some(format!("create {}: {e}", path.display()))),
        };
        JsonlSink {
            out,
            err,
            buf: String::with_capacity(256),
        }
    }

    fn line(&mut self) {
        self.buf.push('\n');
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.write_all(self.buf.as_bytes()) {
                self.err.get_or_insert_with(|| format!("write: {e}"));
                self.out = None;
            }
        }
        self.buf.clear();
    }
}

impl ObsSink for JsonlSink {
    fn on_msg(&mut self, m: &MsgRecord) {
        encode_msg(m, &mut self.buf);
        self.line();
    }
    fn on_compute(&mut self, c: &ComputeRecord) {
        encode_compute(c, &mut self.buf);
        self.line();
    }
    fn on_barrier(&mut self, b: &BarrierRecord) {
        encode_barrier(b, &mut self.buf);
        self.line();
    }
    fn on_timer(&mut self, t: &TimerRecord) {
        encode_timer(t, &mut self.buf);
        self.line();
    }
    fn on_span(&mut self, s: &Span) {
        use std::fmt::Write as _;
        let _ = write!(
            self.buf,
            "{{\"k\":\"s\",\"proc\":{},\"start\":{},\"end\":{},\"act\":{}}}",
            s.proc, s.start, s.end, s.activity as u8
        );
        self.line();
    }
    fn finish(&mut self) -> Result<(), String> {
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.flush() {
                self.err.get_or_insert_with(|| format!("flush: {e}"));
            }
        }
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn cause_parts(c: Cause) -> (u8, u64) {
    match c {
        Cause::Start => (0, 0),
        Cause::Msg(id) => (1, id),
        Cause::Compute(id) => (2, id),
        Cause::Barrier(id) => (3, id),
        Cause::Retry(id) => (4, id),
    }
}

fn cause_from_parts(cs: u64, ci: u64) -> Result<Cause, String> {
    Ok(match cs {
        0 => Cause::Start,
        1 => Cause::Msg(ci),
        2 => Cause::Compute(ci),
        3 => Cause::Barrier(ci),
        4 => Cause::Retry(ci),
        _ => return Err(format!("unknown cause tag {cs}")),
    })
}

fn encode_msg(m: &MsgRecord, buf: &mut String) {
    use std::fmt::Write as _;
    let (cs, ci) = cause_parts(m.cause);
    let _ = write!(
        buf,
        "{{\"k\":\"m\",\"id\":{},\"src\":{},\"dst\":{},\"tag\":{},\"words\":{},\"cs\":{cs},\"ci\":{ci},\
         \"submit\":{},\"gate\":{},\"inject\":{},\"sent\":{},\"arrive\":{},\"rgate\":{},\"rstart\":{},\"deliver\":{}}}",
        m.id, m.src, m.dst, m.tag, m.words, m.submit, m.send_gate, m.inject, m.sent, m.arrive,
        m.recv_gate, m.recv_start, m.deliver
    );
}

fn encode_compute(c: &ComputeRecord, buf: &mut String) {
    use std::fmt::Write as _;
    let (cs, ci) = cause_parts(c.cause);
    let _ = write!(
        buf,
        "{{\"k\":\"c\",\"id\":{},\"proc\":{},\"tag\":{},\"cs\":{cs},\"ci\":{ci},\"submit\":{},\"start\":{},\"end\":{}}}",
        c.id, c.proc, c.tag, c.submit, c.start, c.end
    );
}

fn encode_barrier(b: &BarrierRecord, buf: &mut String) {
    use std::fmt::Write as _;
    let (cs, ci) = cause_parts(b.cause);
    let _ = write!(
        buf,
        "{{\"k\":\"b\",\"id\":{},\"proc\":{},\"cs\":{cs},\"ci\":{ci},\"submit\":{},\"enter\":{},\"release\":{}}}",
        b.id, b.last_proc, b.submit, b.enter, b.release
    );
}

fn encode_timer(t: &TimerRecord, buf: &mut String) {
    use std::fmt::Write as _;
    let (cs, ci) = cause_parts(t.cause);
    let _ = write!(
        buf,
        "{{\"k\":\"t\",\"id\":{},\"proc\":{},\"tag\":{},\"cs\":{cs},\"ci\":{ci},\"submit\":{},\"armed\":{},\"fire\":{}}}",
        t.id, t.proc, t.tag, t.submit, t.armed, t.fire
    );
}

/// Extract the numeric value of `"key":` from a JSONL line (the encoder
/// above never nests or quotes numbers, so a flat scan suffices).
fn field(line: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?} in {line:?}"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<u64>()
        .map_err(|e| format!("bad {key:?} in {line:?}: {e}"))
}

/// Parse a [`JsonlSink`] stream back into an [`ObsLog`]. Records sort by
/// id per kind; span lines (`"k":"s"`) are activity-trace material, not
/// log records, and are skipped. On the classic engine the result is the
/// retained log verbatim; on the sharded engine apply
/// [`ObsLog::canonicalize`] before comparing.
pub fn replay_jsonl(text: &str) -> Result<ObsLog, String> {
    let mut log = ObsLog::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let k = line
            .find("\"k\":\"")
            .and_then(|i| line[i + 5..].chars().next())
            .ok_or_else(|| format!("missing kind in {line:?}"))?;
        let cause = cause_from_parts(
            field(line, "cs").unwrap_or(0),
            field(line, "ci").unwrap_or(0),
        );
        match k {
            'm' => log.msgs.push(MsgRecord {
                id: field(line, "id")?,
                src: field(line, "src")? as ProcId,
                dst: field(line, "dst")? as ProcId,
                tag: field(line, "tag")? as u32,
                words: field(line, "words")?,
                cause: cause?,
                submit: field(line, "submit")?,
                send_gate: field(line, "gate")?,
                inject: field(line, "inject")?,
                sent: field(line, "sent")?,
                arrive: field(line, "arrive")?,
                recv_gate: field(line, "rgate")?,
                recv_start: field(line, "rstart")?,
                deliver: field(line, "deliver")?,
            }),
            'c' => log.computes.push(ComputeRecord {
                id: field(line, "id")?,
                proc: field(line, "proc")? as ProcId,
                tag: field(line, "tag")?,
                cause: cause?,
                submit: field(line, "submit")?,
                start: field(line, "start")?,
                end: field(line, "end")?,
            }),
            'b' => log.barriers.push(BarrierRecord {
                id: field(line, "id")?,
                last_proc: field(line, "proc")? as ProcId,
                submit: field(line, "submit")?,
                enter: field(line, "enter")?,
                release: field(line, "release")?,
                cause: cause?,
            }),
            't' => log.timers.push(TimerRecord {
                id: field(line, "id")?,
                proc: field(line, "proc")? as ProcId,
                tag: field(line, "tag")?,
                cause: cause?,
                submit: field(line, "submit")?,
                armed: field(line, "armed")?,
                fire: field(line, "fire")?,
            }),
            's' => {}
            other => return Err(format!("unknown record kind {other:?}")),
        }
    }
    log.msgs.sort_by_key(|m| m.id);
    log.computes.sort_by_key(|c| c.id);
    log.barriers.sort_by_key(|b| b.id);
    log.timers.sort_by_key(|t| t.id);
    Ok(log)
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

/// Which lifecycle records a streaming sink sees. Every policy is a pure
/// function of record identity (never of engine internals), so the
/// sampled *set* is identical across lane and thread counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ObsSampling {
    /// Every record.
    #[default]
    All,
    /// Records (and spans) of processors with `p % n == 0`.
    Stride(u32),
    /// Records (and spans) of an explicit processor set.
    ProcSet(Vec<ProcId>),
    /// The first and last `k` messages of each source (by per-source
    /// issue order). Message records are buffered and emitted in id order
    /// at the end of the run; spans are suppressed.
    HeadTail(u32),
    /// A seeded bottom-k reservoir over all messages: each message is
    /// ranked by a pure hash of `(seed, src, per-source seq)` and the `k`
    /// lowest ranks survive. Emitted in id order at the end of the run;
    /// spans are suppressed.
    Reservoir { k: u32, seed: u64 },
}

/// Reservoir entry ordered by rank (max-heap keeps the k lowest ranks).
struct ResEntry {
    rank: (u64, u64),
    rec: MsgRecord,
}

impl PartialEq for ResEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl Eq for ResEntry {}
impl PartialOrd for ResEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ResEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank.cmp(&other.rank)
    }
}

/// Applies an [`ObsSampling`] policy to the record stream.
pub(crate) struct Sampler {
    policy: ObsSampling,
    /// Per-source message ordinal (head/tail and reservoir identity).
    seq: HashMap<ProcId, u64>,
    /// Head-k and tail-k buffers per source.
    head: HashMap<ProcId, Vec<MsgRecord>>,
    tail: HashMap<ProcId, VecDeque<MsgRecord>>,
    /// Bottom-k reservoir.
    res: BinaryHeap<ResEntry>,
}

impl Sampler {
    pub(crate) fn new(policy: ObsSampling) -> Self {
        Sampler {
            policy,
            seq: HashMap::new(),
            head: HashMap::new(),
            tail: HashMap::new(),
            res: BinaryHeap::new(),
        }
    }

    /// Whether processor `p`'s non-message records (computes, timers,
    /// barrier last-entrant) and spans pass the policy.
    pub(crate) fn pass_proc(&self, p: ProcId) -> bool {
        match &self.policy {
            ObsSampling::All => true,
            ObsSampling::Stride(n) => *n <= 1 || p.is_multiple_of(*n),
            ObsSampling::ProcSet(set) => set.contains(&p),
            // Message-shaped policies keep the full causal skeleton:
            // non-message records pass, spans are suppressed separately.
            ObsSampling::HeadTail(_) | ObsSampling::Reservoir { .. } => true,
        }
    }

    /// Whether activity spans stream at all under this policy.
    pub(crate) fn spans_enabled(&self) -> bool {
        !matches!(
            self.policy,
            ObsSampling::HeadTail(_) | ObsSampling::Reservoir { .. }
        )
    }

    /// Offer a completed message record. `Some` means emit immediately;
    /// `None` means it was dropped or deferred until [`Sampler::drain`].
    pub(crate) fn offer_msg(&mut self, rec: MsgRecord) -> Option<MsgRecord> {
        let n = self.seq.entry(rec.src).or_insert(0);
        let ordinal = *n;
        *n += 1;
        match &self.policy {
            ObsSampling::All => Some(rec),
            ObsSampling::Stride(_) | ObsSampling::ProcSet(_) => {
                self.pass_proc(rec.src).then_some(rec)
            }
            ObsSampling::HeadTail(k) => {
                let k = *k as usize;
                if ordinal < k as u64 {
                    self.head.entry(rec.src).or_default().push(rec);
                } else {
                    let ring = self.tail.entry(rec.src).or_default();
                    if ring.len() == k {
                        ring.pop_front();
                    }
                    if k > 0 {
                        ring.push_back(rec);
                    }
                }
                None
            }
            ObsSampling::Reservoir { k, seed } => {
                let rank = (
                    logp_core::rng::mix(&[*seed, 0x5245_5356, rec.src as u64, ordinal]),
                    ((rec.src as u64) << 40) | ordinal,
                );
                self.res.push(ResEntry { rank, rec });
                if self.res.len() > *k as usize {
                    self.res.pop();
                }
                None
            }
        }
    }

    /// Deferred records (head/tail, reservoir), sorted by id so the
    /// emission order — and therefore the artifact bytes — are identical
    /// for every lane count.
    pub(crate) fn drain(&mut self) -> Vec<MsgRecord> {
        let mut out: Vec<MsgRecord> = Vec::new();
        for (_, v) in std::mem::take(&mut self.head) {
            out.extend(v);
        }
        for (_, v) in std::mem::take(&mut self.tail) {
            out.extend(v);
        }
        out.extend(std::mem::take(&mut self.res).into_iter().map(|e| e.rec));
        out.sort_by_key(|m| m.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: MsgId, cause: Cause) -> MsgRecord {
        MsgRecord {
            id,
            src: 0,
            dst: 1,
            tag: 0,
            words: 1,
            cause,
            submit: 0,
            send_gate: 0,
            inject: 0,
            sent: 2,
            arrive: 8,
            recv_gate: 0,
            recv_start: 8,
            deliver: 10,
        }
    }

    #[test]
    fn latency_and_flight_require_delivery() {
        let mut m = rec(0, Cause::Start);
        assert_eq!(m.latency(), Some(10));
        assert_eq!(m.flight(), Some(6));
        m.deliver = UNSET;
        m.arrive = UNSET;
        assert_eq!(m.latency(), None);
        assert_eq!(m.flight(), None);
    }

    #[test]
    fn ancestry_walks_to_start() {
        let log = ObsLog {
            msgs: vec![rec(0, Cause::Start), rec(1, Cause::Msg(0))],
            ..Default::default()
        };
        assert_eq!(log.ancestry(1), vec![Cause::Msg(0), Cause::Start]);
        assert_eq!(log.ancestry(0), vec![Cause::Start]);
        assert!(log.ancestry(7).is_empty());
    }

    #[test]
    fn empty_log_reports_empty() {
        assert!(ObsLog::default().is_empty());
    }
}
