//! The sweep runner's headline guarantee: batches are bit-identical
//! regardless of thread count and across repeated invocations.
//!
//! Each run's RNG stream is a function of its spec's base seed and its
//! *index* in the batch (`derive_seed`), never of worker scheduling —
//! so a jittered, drifting, capacity-stalling workload must produce the
//! exact same statistics and traces whether executed on 1, 2, or 8
//! workers, or twice in a row.

use logp_core::sweep::{Axis, Grid};
use logp_core::LogP;
use logp_sim::runner::{derive_seed, run_batch, run_sweep, RunSpec, Threads};
use logp_sim::{Ctx, Data, Message, Process, SimConfig, SimStats, Trace};

/// An irregular workload: every processor scatters to all peers with
/// interleaved compute, so jitter and drift shape both event order and
/// stall accounting.
struct Scatter {
    rounds: u64,
    done: u64,
    got: u32,
}

impl Process for Scatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for dst in 0..ctx.procs() {
            if dst != ctx.me() {
                ctx.send(dst, 0, Data::U64(self.done));
            }
        }
        ctx.compute(3, 0);
    }

    fn on_message(&mut self, _msg: &Message, ctx: &mut Ctx<'_>) {
        self.got += 1;
        if self.got == ctx.procs() - 1 {
            self.got = 0;
            self.done += 1;
            if self.done < self.rounds {
                for dst in 0..ctx.procs() {
                    if dst != ctx.me() {
                        ctx.send(dst, 0, Data::U64(self.done));
                    }
                }
                ctx.compute(3, 0);
            }
        }
    }
}

/// A jittered/drifting config so the RNG actually matters.
fn noisy_config() -> SimConfig {
    SimConfig::traced()
        .with_jitter(3)
        .with_drift(8)
        .with_seed(0xBADC_0FFE)
}

fn grid() -> Grid {
    Grid {
        l: Axis::list([4, 8, 16]),
        o: Axis::list([1, 2]),
        g: Axis::fixed(4),
        p: Axis::list([2, 4]),
    }
}

fn batch_outcome(threads: Threads) -> Vec<(SimStats, Trace)> {
    let specs: Vec<RunSpec> = grid()
        .machines()
        .into_iter()
        .map(|m| {
            RunSpec::new(m, noisy_config(), |_| {
                Box::new(Scatter {
                    rounds: 20,
                    done: 0,
                    got: 0,
                })
            })
        })
        .collect();
    run_batch(&specs, threads)
        .into_iter()
        .map(|r| {
            let r = r.expect("scatter terminates");
            (r.stats, r.trace)
        })
        .collect()
}

#[test]
fn batches_are_bit_identical_across_thread_counts() {
    let one = batch_outcome(Threads::Fixed(1));
    assert_eq!(one.len(), 12, "grid enumerates 3*2*1*2 machines");
    for threads in [Threads::Fixed(2), Threads::Fixed(8), Threads::Auto] {
        let other = batch_outcome(threads);
        assert_eq!(one, other, "results must not depend on {threads:?}");
    }
}

#[test]
fn repeated_batches_are_bit_identical() {
    assert_eq!(
        batch_outcome(Threads::Fixed(4)),
        batch_outcome(Threads::Fixed(4))
    );
}

#[test]
fn batch_runs_differ_from_each_other_but_not_from_their_seed() {
    // Two specs with the same base seed get *different* streams (their
    // indices differ) — the decorrelation half of the seed contract...
    let mk = || {
        RunSpec::new(LogP::new(8, 1, 4, 4).unwrap(), noisy_config(), |_| {
            Box::new(Scatter {
                rounds: 20,
                done: 0,
                got: 0,
            })
        })
    };
    let results = run_batch(&[mk(), mk()], Threads::Fixed(2));
    let stats: Vec<&SimStats> = results.iter().map(|r| &r.as_ref().unwrap().stats).collect();
    assert_ne!(
        stats[0], stats[1],
        "same spec at different batch indices must draw different jitter"
    );

    // ...and each run is reproducible standalone via derive_seed — the
    // reproducibility half.
    for (i, want) in stats.iter().enumerate() {
        let spec = mk();
        let mut config = noisy_config();
        config.seed = derive_seed(config.seed, i as u64);
        let standalone = RunSpec::new(spec.model, config, |_| {
            Box::new(Scatter {
                rounds: 20,
                done: 0,
                got: 0,
            })
        })
        .run()
        .unwrap();
        assert_eq!(&&standalone.stats, want, "batch index {i} must replay");
    }
}

#[test]
fn run_sweep_is_thread_count_independent() {
    let sweep_at = |threads| {
        run_sweep(&grid(), &noisy_config(), threads, |_| {
            Box::new(Scatter {
                rounds: 10,
                done: 0,
                got: 0,
            })
        })
        .into_iter()
        .map(|(m, r)| (m, r.unwrap().stats))
        .collect::<Vec<_>>()
    };
    assert_eq!(sweep_at(Threads::Fixed(1)), sweep_at(Threads::Fixed(8)));
}

#[test]
fn sweep_map_preserves_order_and_thread_independence() {
    // The generic fan-out used by calibration sweeps (`logp-calib`):
    // results come back in input order, bit-identical at any worker
    // count, even when each item runs a full simulation internally.
    use logp_sim::runner::sweep_map;
    use logp_sim::Sim;

    let grid = grid();
    let machines = grid.machines();
    let measure = |m: &LogP| -> (LogP, SimStats) {
        let mut sim = Sim::new(*m, noisy_config());
        for p in 0..m.p {
            sim.set_process(
                p,
                Box::new(Scatter {
                    rounds: 5,
                    done: 0,
                    got: 0,
                }),
            );
        }
        (*m, sim.run().expect("scatter terminates").stats)
    };
    let serial = sweep_map(Threads::Fixed(1), &machines, measure);
    assert_eq!(
        serial.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
        machines,
        "sweep_map must preserve input order"
    );
    for threads in [Threads::Fixed(2), Threads::Fixed(8), Threads::Auto] {
        assert_eq!(serial, sweep_map(threads, &machines, measure));
    }
}
