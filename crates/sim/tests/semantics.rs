//! Golden tests pinning the simulator's LogP semantics against the timing
//! rules spelled out in the paper (and DESIGN.md).

use logp_core::LogP;
use logp_sim::message::Data;
use logp_sim::process::{Ctx, Process, StartFn};
use logp_sim::{Sim, SimConfig};

fn fig3() -> LogP {
    LogP::fig3() // L=6, o=2, g=4, P=8
}

/// P0 sends one message to P1; the datum is usable at 2o + L.
#[test]
fn point_to_point_takes_2o_plus_l() {
    let mut sim = Sim::new(LogP::new(6, 2, 4, 2).unwrap(), SimConfig::default());
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| ctx.send(1, 0, Data::U64(1)))),
    );
    let r = sim.run().unwrap();
    assert_eq!(r.stats.completion, 10);
    assert_eq!(r.stats.total_msgs, 1);
    assert_eq!(r.stats.procs[0].send_overhead, 2);
    assert_eq!(r.stats.procs[1].recv_overhead, 2);
}

/// Consecutive sends are spaced by g: injections at 0, 4, 8, ...
#[test]
fn send_gap_is_respected() {
    let mut sim = Sim::new(LogP::new(6, 2, 4, 2).unwrap(), SimConfig::traced());
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            for _ in 0..3 {
                ctx.send(1, 0, Data::Empty);
            }
        })),
    );
    let r = sim.run().unwrap();
    let spans = r.trace.for_proc(0);
    let starts: Vec<u64> = spans
        .iter()
        .filter(|s| s.activity == logp_sim::Activity::SendOverhead)
        .map(|s| s.start)
        .collect();
    assert_eq!(starts, vec![0, 4, 8]);
    // Third message injected at 8, usable at 8 + 2o + L = 18... but the
    // receiver's gap also spaces receptions: arrivals at 8, 12, 16;
    // receptions start at 8, 12, 16 (gap 4 >= o); last done at 18.
    assert_eq!(r.stats.completion, 18);
}

/// When o > g, the processor itself limits injection: sends at 0, o, 2o.
#[test]
fn overhead_limits_injection_when_o_exceeds_g() {
    let mut sim = Sim::new(LogP::new(6, 5, 2, 2).unwrap(), SimConfig::traced());
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            for _ in 0..3 {
                ctx.send(1, 0, Data::Empty);
            }
        })),
    );
    let r = sim.run().unwrap();
    let starts: Vec<u64> = r
        .trace
        .for_proc(0)
        .iter()
        .filter(|s| s.activity == logp_sim::Activity::SendOverhead)
        .map(|s| s.start)
        .collect();
    assert_eq!(starts, vec![0, 5, 10]);
}

/// A single full-rate sender occupies exactly the capacity window and
/// never stalls: the ⌈L/g⌉ limit is calibrated to a g-spaced stream.
#[test]
fn single_sender_never_stalls() {
    let model = LogP::new(8, 1, 2, 2).unwrap();
    assert_eq!(model.capacity(), 4);
    let mut sim = Sim::new(model, SimConfig::default());
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            for _ in 0..20 {
                ctx.send(1, 0, Data::Empty);
            }
        })),
    );
    let r = sim.run().unwrap();
    assert!(r.stats.max_inflight_per_dst <= 4, "capacity violated");
    assert_eq!(
        r.stats.procs[0].stall, 0,
        "a lone g-spaced stream fits the window"
    );
}

/// The capacity constraint stalls senders once a destination's aggregate
/// injection rate exceeds one message per g.
#[test]
fn capacity_constraint_stalls_competing_senders() {
    let model = LogP::new(8, 1, 2, 3).unwrap();
    let burst = |ctx: &mut Ctx<'_>| {
        for _ in 0..20 {
            ctx.send(2, 0, Data::Empty);
        }
    };
    let mut sim = Sim::new(model, SimConfig::default());
    sim.set_process(0, Box::new(StartFn(burst)));
    sim.set_process(1, Box::new(StartFn(burst)));
    let r = sim.run().unwrap();
    assert!(r.stats.max_inflight_per_dst <= 4, "capacity violated");
    let stalls = r.stats.procs[0].stall + r.stats.procs[1].stall;
    assert!(
        stalls > 0,
        "two full-rate senders into one destination must stall"
    );
}

/// Ablation: with the constraint disabled the same contention never stalls
/// and the window overfills.
#[test]
fn capacity_ablation_removes_stalls() {
    let model = LogP::new(8, 1, 2, 3).unwrap();
    let cfg = SimConfig {
        enforce_capacity: false,
        ..Default::default()
    };
    let burst = |ctx: &mut Ctx<'_>| {
        for _ in 0..20 {
            ctx.send(2, 0, Data::Empty);
        }
    };
    let mut sim = Sim::new(model, cfg);
    sim.set_process(0, Box::new(StartFn(burst)));
    sim.set_process(1, Box::new(StartFn(burst)));
    let r = sim.run().unwrap();
    assert_eq!(r.stats.procs[0].stall + r.stats.procs[1].stall, 0);
    assert!(r.stats.max_inflight_per_dst > 4);
}

/// Hot spot: many senders to one destination are throttled to roughly one
/// injection per g by the destination's capacity window.
#[test]
fn hot_spot_serializes_at_the_destination() {
    let model = LogP::new(8, 1, 2, 9).unwrap();
    let mut sim = Sim::new(model, SimConfig::default());
    let msgs_per_sender = 10u64;
    sim.set_all(|p| {
        Box::new(StartFn(move |ctx: &mut Ctx<'_>| {
            if p != 0 {
                for _ in 0..msgs_per_sender {
                    ctx.send(0, 0, Data::Empty);
                }
            }
        }))
    });
    let r = sim.run().unwrap();
    let total = msgs_per_sender * 8;
    // Aggregate throughput into one destination is bounded by one message
    // per g once the pipe fills: completion >= total * g (up to startup).
    assert!(
        r.stats.completion >= total * model.g,
        "completion {} should reflect per-destination serialization",
        r.stats.completion
    );
    assert!(r.stats.max_inflight_per_dst <= model.capacity());
    assert_eq!(r.stats.total_msgs, total);
}

/// Compute costs exactly the requested cycles and fires the callback.
#[test]
fn compute_accounts_exact_cycles() {
    struct Worker {
        done_at: u64,
    }
    impl Process for Worker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.compute(37, 1);
            ctx.compute(5, 2);
        }
        fn on_compute_done(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
            if tag == 2 {
                self.done_at = ctx.now();
            }
        }
    }
    let mut sim = Sim::new(LogP::new(1, 1, 1, 1).unwrap(), SimConfig::default());
    sim.set_process(0, Box::new(Worker { done_at: 0 }));
    let r = sim.run().unwrap();
    assert_eq!(r.stats.completion, 42);
    assert_eq!(r.stats.procs[0].compute, 42);
}

/// Receptions respect the gap: two messages arriving together are
/// received g apart.
#[test]
fn reception_gap_is_respected() {
    // Two senders inject at time 0 to the same destination; both arrive at
    // o + L = 8. Receptions start at 8 and 12 (g = 4).
    let model = LogP::new(6, 2, 4, 3).unwrap();
    let mut sim = Sim::new(model, SimConfig::traced());
    for s in [0u32, 1] {
        sim.set_process(
            s,
            Box::new(StartFn(move |ctx: &mut Ctx<'_>| {
                ctx.send(2, 0, Data::Empty)
            })),
        );
    }
    let r = sim.run().unwrap();
    let starts: Vec<u64> = r
        .trace
        .for_proc(2)
        .iter()
        .filter(|s| s.activity == logp_sim::Activity::RecvOverhead)
        .map(|s| s.start)
        .collect();
    assert_eq!(starts, vec![8, 12]);
}

/// The full Figure 3 broadcast: executing the optimal tree on the
/// simulator completes at exactly 24 cycles.
#[test]
fn figure3_broadcast_runs_in_24_cycles() {
    use logp_core::broadcast::optimal_broadcast_tree;
    let m = fig3();
    let tree = optimal_broadcast_tree(&m);
    let children = tree.children();

    struct Bcast {
        children: Vec<u32>,
        root: bool,
    }
    impl Bcast {
        fn fan_out(&self, ctx: &mut Ctx<'_>) {
            for &c in &self.children {
                ctx.send(c, 0, Data::U64(42));
            }
        }
    }
    impl Process for Bcast {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.root {
                self.fan_out(ctx);
            }
        }
        fn on_message(&mut self, _msg: &logp_sim::Message, ctx: &mut Ctx<'_>) {
            self.fan_out(ctx);
        }
    }

    let mut sim = Sim::new(m, SimConfig::default());
    sim.set_all(|p| {
        Box::new(Bcast {
            children: children[p as usize].clone(),
            root: p == 0,
        })
    });
    let r = sim.run().unwrap();
    assert_eq!(
        r.stats.completion, 24,
        "Figure 3's broadcast finishes at 24"
    );
    assert_eq!(r.stats.total_msgs, 7);
}

/// Barrier synchronizes all processors at the max entry time.
#[test]
fn barrier_releases_everyone_together() {
    struct B {
        cycles: u64,
        released_at: logp_sim::SharedCell<Vec<u64>>,
    }
    impl Process for B {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.compute(self.cycles, 0);
            ctx.barrier();
        }
        fn on_barrier_release(&mut self, ctx: &mut Ctx<'_>) {
            let now = ctx.now();
            self.released_at.with(|v| v.push(now));
        }
    }
    let cell = logp_sim::SharedCell::<Vec<u64>>::new();
    let mut sim = Sim::new(LogP::new(2, 1, 1, 4).unwrap(), SimConfig::default());
    for p in 0..4 {
        sim.set_process(
            p,
            Box::new(B {
                cycles: (p as u64 + 1) * 10,
                released_at: cell.clone(),
            }),
        );
    }
    let r = sim.run().unwrap();
    assert_eq!(cell.get(), vec![40, 40, 40, 40]);
    assert_eq!(r.stats.procs[0].barrier_wait, 30);
    assert_eq!(r.stats.procs[3].barrier_wait, 0);
}

/// Jitter keeps latency within (0, L] and the run remains deterministic
/// for a fixed seed.
#[test]
fn jitter_is_bounded_and_deterministic() {
    let model = LogP::new(10, 1, 2, 2).unwrap();
    let run = |seed: u64| {
        let cfg = SimConfig::default().with_jitter(9).with_seed(seed);
        let mut sim = Sim::new(model, cfg);
        sim.set_process(
            0,
            Box::new(StartFn(|ctx: &mut Ctx<'_>| {
                for _ in 0..50 {
                    ctx.send(1, 0, Data::Empty);
                }
            })),
        );
        sim.run().unwrap().stats.completion
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a, b, "same seed must reproduce bit-identically");
    //

    // Different seeds usually give different completions under jitter;
    // don't assert it strictly (they could collide), but latency bounds
    // must hold: completion <= the no-jitter run.
    let no_jitter = {
        let mut sim = Sim::new(model, SimConfig::default());
        sim.set_process(
            0,
            Box::new(StartFn(|ctx: &mut Ctx<'_>| {
                for _ in 0..50 {
                    ctx.send(1, 0, Data::Empty);
                }
            })),
        );
        sim.run().unwrap().stats.completion
    };
    assert!(a <= no_jitter);
    assert!(c <= no_jitter);
}

/// Drift perturbs compute times but stays within the configured band.
#[test]
fn drift_stays_within_band() {
    let cfg = SimConfig::default().with_drift(102); // ~10%
    let mut sim = Sim::new(LogP::new(1, 1, 1, 1).unwrap(), cfg);
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| ctx.compute(10_000, 0))),
    );
    let r = sim.run().unwrap();
    let c = r.stats.procs[0].compute;
    assert!(
        (9_000..=11_000).contains(&c),
        "10% drift band violated: {c}"
    );
}

/// A halted processor stops participating; the run still terminates.
#[test]
fn halt_terminates_cleanly() {
    let mut sim = Sim::new(LogP::new(2, 1, 1, 2).unwrap(), SimConfig::default());
    sim.set_all(|_| {
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            ctx.compute(5, 0);
            ctx.halt();
        }))
    });
    let r = sim.run().unwrap();
    assert_eq!(r.stats.completion, 5);
}

/// Determinism: the full Figure-3 broadcast yields identical stats on
/// repeated runs.
#[test]
fn runs_are_reproducible() {
    let run = || {
        let mut sim = Sim::new(fig3(), SimConfig::default());
        sim.set_all(|p| {
            Box::new(StartFn(move |ctx: &mut Ctx<'_>| {
                if p == 0 {
                    for d in 1..ctx.procs() {
                        ctx.send(d, 0, Data::Empty);
                    }
                }
            }))
        });
        let r = sim.run().unwrap();
        (r.stats.completion, r.stats.total_msgs, r.stats.events)
    };
    assert_eq!(run(), run());
}

/// The event budget catches runaway programs.
#[test]
fn event_budget_is_enforced() {
    struct Forever;
    impl Process for Forever {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.compute(1, 0);
        }
        fn on_compute_done(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
            ctx.compute(1, 0); // never stops
        }
    }
    let cfg = SimConfig {
        max_events: 100,
        ..Default::default()
    };
    let mut sim = Sim::new(LogP::new(1, 1, 1, 1).unwrap(), cfg);
    sim.set_process(0, Box::new(Forever));
    assert!(matches!(
        sim.run(),
        Err(logp_sim::SimError::MaxEventsExceeded { limit: 100 })
    ));
}

/// LogGP long messages: end-to-end time is 2o + (k-1)·G + L, and the
/// sender's processor is free after only o.
#[test]
fn loggp_bulk_send_semantics() {
    use logp_core::extensions::LogGP;
    let model = LogP::new(60, 5, 10, 2).unwrap();
    let big_g = 2u64;
    let words = 100u64;
    let cfg = SimConfig::default().with_big_g(big_g);
    let mut sim = Sim::new(model, cfg);
    sim.set_process(
        0,
        Box::new(StartFn(move |ctx: &mut Ctx<'_>| {
            ctx.send_bulk(1, 0, Data::U64(7), words);
        })),
    );
    let r = sim.run().unwrap();
    let expect = LogGP::new(model, big_g).long_message_time(words);
    assert_eq!(
        r.stats.completion, expect,
        "bulk time must match the LogGP formula"
    );
    // Sender paid only o of overhead.
    assert_eq!(r.stats.procs[0].send_overhead, model.o);
}

/// Bulk vs train: the simulator reproduces the analytic break-even of the
/// LogGP extension.
#[test]
fn bulk_beats_train_beyond_break_even() {
    use logp_core::extensions::LogGP;
    let model = LogP::new(60, 5, 10, 2).unwrap();
    let loggp = LogGP::new(model, 2);
    let words = 64u64;
    let bulk = {
        let mut sim = Sim::new(model, SimConfig::default().with_big_g(2));
        sim.set_process(
            0,
            Box::new(StartFn(move |ctx: &mut Ctx<'_>| {
                ctx.send_bulk(1, 0, Data::Empty, words)
            })),
        );
        sim.run().unwrap().stats.completion
    };
    let train = {
        let mut sim = Sim::new(model, SimConfig::default());
        sim.set_process(
            0,
            Box::new(StartFn(move |ctx: &mut Ctx<'_>| {
                for _ in 0..words {
                    ctx.send(1, 0, Data::Empty);
                }
            })),
        );
        sim.run().unwrap().stats.completion
    };
    assert!(bulk < train, "bulk {bulk} vs train {train}");
    assert_eq!(bulk, loggp.long_message_time(words));
    // The train's last word is *usable* at the stream bound; the receiver
    // keeps paying o per message afterwards, so completion >= the bound.
    assert!(train >= loggp.small_message_time(words));
}

/// A processor can overlap computation with its interface streaming a
/// long message (the §5.4 "DMA" effect).
#[test]
fn bulk_streaming_overlaps_compute() {
    let model = LogP::new(20, 5, 10, 2).unwrap();
    let cfg = SimConfig::default().with_big_g(4);
    let mut sim = Sim::new(model, cfg);
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            ctx.send_bulk(1, 0, Data::Empty, 50); // streams (49)*4 = 196 cycles
            ctx.compute(100, 0); // fits inside the streaming window
        })),
    );
    let r = sim.run().unwrap();
    // Compute starts right after the o overhead, not after streaming.
    assert_eq!(r.stats.procs[0].compute, 100);
    let compute_end = model.o + 100;
    assert!(compute_end < model.o + 49 * 4, "compute fits in the window");
    // Completion is the message delivery, unaffected by the compute.
    assert_eq!(r.stats.completion, 2 * model.o + 49 * 4 + model.l);
}

/// Per-processor skew is systematic: the same processor is consistently
/// fast or slow across calls, and runs are seed-deterministic.
#[test]
fn skew_is_systematic_and_deterministic() {
    let run = |seed: u64| {
        let cfg = SimConfig::default().with_skew(100).with_seed(seed);
        let mut sim = Sim::new(LogP::new(1, 1, 1, 4).unwrap(), cfg);
        sim.set_all(|_| {
            Box::new(StartFn(|ctx: &mut Ctx<'_>| {
                for _ in 0..4 {
                    ctx.compute(1000, 0);
                }
            }))
        });
        let r = sim.run().unwrap();
        r.stats.procs.iter().map(|p| p.compute).collect::<Vec<_>>()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a, b, "same seed, same skews");
    // Each processor's four computes scale identically (systematic, not
    // noise): total must be 4x a per-call value within rounding.
    for &total in &a {
        assert_eq!(total % 4, 0, "four identical perturbed calls: {total}");
    }
    // ~10% band.
    for &total in &a {
        assert!((3600..=4400).contains(&total), "skew outside band: {total}");
    }
    // Different processors generally differ.
    assert!(a.iter().any(|&t| t != a[0]) || a[0] == 4000);
}

/// Barrier cost is charged after the last arrival.
#[test]
fn barrier_cost_delays_release() {
    let cfg = SimConfig {
        barrier_cost: 25,
        ..Default::default()
    };
    let mut sim = Sim::new(LogP::new(2, 1, 1, 2).unwrap(), cfg);
    struct B;
    impl Process for B {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.compute(10, 0);
            ctx.barrier();
        }
    }
    sim.set_all(|_| Box::new(B));
    let r = sim.run().unwrap();
    assert_eq!(r.stats.completion, 10 + 25);
}
