//! Engine-level fault-injection semantics: drops, duplicates, delays,
//! crash-stops, and the retransmission timers that ride on them (see
//! `docs/FAILURE_MODEL.md`).

use logp_core::LogP;
use logp_sim::critpath::critical_path;
use logp_sim::process::{Ctx, Process, StartFn};
use logp_sim::{Cause, Data, FaultPlan, Message, SharedCell, Sim, SimConfig};

fn model() -> LogP {
    LogP::new(6, 2, 4, 2).unwrap()
}

/// P0 sends one word to P1; P1 counts deliveries.
struct Ping {
    got: SharedCell<Vec<u64>>,
}

impl Process for Ping {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.me() == 0 {
            ctx.send(1, 0, Data::U64(7));
        }
    }
    fn on_message(&mut self, msg: &Message, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let _ = msg;
        self.got.with(|v| v.push(now));
    }
}

fn run_ping(plan: FaultPlan, config: SimConfig) -> (Vec<u64>, logp_sim::SimResult) {
    let got: SharedCell<Vec<u64>> = SharedCell::new();
    let mut sim = Sim::new(model(), config.with_faults(plan));
    let g = got.clone();
    sim.set_all(move |_| Box::new(Ping { got: g.clone() }));
    let res = sim.run().unwrap();
    (got.get(), res)
}

#[test]
fn dropped_message_never_delivers_but_frees_capacity() {
    let plan = FaultPlan::new(1).with_drop_ppm(1_000_000);
    let (got, res) = run_ping(plan, SimConfig::default());
    assert!(got.is_empty());
    assert_eq!(res.stats.msgs_dropped, 1);
    assert_eq!(res.stats.total_msgs, 0);
    // The sender's capacity slot was released: a second run with two
    // sends back-to-back also terminates (no leaked in-flight count).
    let plan = FaultPlan::new(1).with_drop_ppm(1_000_000);
    let got: SharedCell<Vec<u64>> = SharedCell::new();
    let mut sim = Sim::new(model(), SimConfig::default().with_faults(plan));
    let g = got.clone();
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            for _ in 0..8 {
                ctx.send(1, 0, Data::Empty);
            }
        })),
    );
    let g2 = g;
    sim.set_process(1, Box::new(Ping { got: g2 }));
    let res = sim.run().unwrap();
    assert_eq!(res.stats.msgs_dropped, 8);
    assert!(got.get().is_empty());
}

#[test]
fn duplicated_message_delivers_twice() {
    let plan = FaultPlan::new(2).with_dup_ppm(1_000_000);
    let (got, res) = run_ping(plan, SimConfig::default());
    assert_eq!(got.len(), 2, "original + duplicate");
    assert_eq!(res.stats.msgs_duplicated, 1);
    assert_eq!(res.stats.total_msgs, 2);
    // The duplicate trails the original.
    assert!(got[1] > got[0]);
    assert_eq!(got[0], model().point_to_point());
}

#[test]
fn delayed_message_arrives_late() {
    let plan = FaultPlan::new(3).with_delay(1_000_000, 16);
    let (got, res) = run_ping(plan, SimConfig::default());
    assert_eq!(got.len(), 1);
    assert_eq!(res.stats.msgs_delayed, 1);
    let base = model().point_to_point();
    assert!(got[0] > base, "delayed past 2o+L={base}: {}", got[0]);
    assert!(got[0] <= base + 16);
}

#[test]
fn crashed_destination_drops_arrivals_without_deadlock() {
    let plan = FaultPlan::new(4).with_crash(1, 0);
    let (got, res) = run_ping(plan, SimConfig::default());
    assert!(got.is_empty());
    assert_eq!(res.stats.procs_crashed, 1);
    assert_eq!(res.stats.msgs_dropped, 1);
    assert_eq!(res.stats.total_msgs, 0);
}

#[test]
fn crash_at_arrival_cycle_beats_the_message() {
    // Crash scheduled at exactly the arrival cycle: the crash event was
    // enqueued first (lower sequence in the same class), so the message
    // finds a dead processor — deterministic crash-before-arrival.
    let t = model().point_to_point();
    let plan = FaultPlan::new(5).with_crash(1, t);
    let (got, res) = run_ping(plan, SimConfig::default());
    assert!(got.is_empty());
    assert_eq!(res.stats.msgs_dropped, 1);
}

#[test]
fn mid_run_crash_stops_a_processor() {
    // P0 streams to P1; P1 crashes mid-stream. Deliveries before the
    // crash land, the rest drop, and the run still terminates.
    let plan = FaultPlan::new(6).with_crash(1, 25);
    let got: SharedCell<Vec<u64>> = SharedCell::new();
    let mut sim = Sim::new(model(), SimConfig::default().with_faults(plan));
    let g = got.clone();
    sim.set_process(
        0,
        Box::new(StartFn(|ctx: &mut Ctx<'_>| {
            for _ in 0..10 {
                ctx.send(1, 0, Data::Empty);
            }
        })),
    );
    sim.set_process(1, Box::new(Ping { got: g }));
    let res = sim.run().unwrap();
    let got = got.get();
    assert!(!got.is_empty(), "early deliveries precede the crash");
    assert!(got.iter().all(|&t| t < 25));
    assert_eq!(got.len() as u64 + res.stats.msgs_dropped, 10);
}

#[test]
fn zero_plan_is_cycle_identical_to_no_plan() {
    // The FAULTS = true monomorphization with an all-zero plan must
    // produce the same bytes as faults: None — including under latency
    // jitter, whose RNG draws must stay aligned.
    for jitter in [0, 5] {
        let config = SimConfig::observed().with_jitter(jitter).with_seed(42);
        let (got_none, res_none) = {
            let got: SharedCell<Vec<u64>> = SharedCell::new();
            let mut sim = Sim::new(model(), config.clone());
            let g = got.clone();
            sim.set_all(move |_| Box::new(Ping { got: g.clone() }));
            (got.clone(), sim.run().unwrap())
        };
        let (got_zero, res_zero) = run_ping(FaultPlan::new(9), config);
        assert_eq!(res_none, res_zero, "jitter={jitter}");
        assert_eq!(got_none.get(), got_zero);
    }
}

// ---------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------

struct TimerProg {
    fires: SharedCell<Vec<(u64, u64)>>,
    halt_first: bool,
}

impl Process for TimerProg {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.me() == 0 {
            ctx.timer(10, 0xAB);
            ctx.timer(3, 0xCD);
            if self.halt_first {
                ctx.halt();
            }
        }
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.fires.with(|v| v.push((tag, now)));
    }
}

fn run_timers(halt_first: bool, config: SimConfig) -> Vec<(u64, u64)> {
    let fires: SharedCell<Vec<(u64, u64)>> = SharedCell::new();
    let mut sim = Sim::new(model(), config);
    let f = fires.clone();
    sim.set_all(move |_| {
        Box::new(TimerProg {
            fires: f.clone(),
            halt_first,
        })
    });
    sim.run().unwrap();
    fires.get()
}

#[test]
fn timers_fire_at_their_deadline_in_order() {
    // Timers are a general engine feature: they work without any fault
    // plan (the FAULTS = false monomorphization).
    let fires = run_timers(false, SimConfig::default());
    assert_eq!(fires, vec![(0xCD, 3), (0xAB, 10)]);
    // And identically with a fault plan installed.
    let fires = {
        let f: SharedCell<Vec<(u64, u64)>> = SharedCell::new();
        let mut sim = Sim::new(model(), SimConfig::default().with_faults(FaultPlan::new(1)));
        let ff = f.clone();
        sim.set_all(move |_| {
            Box::new(TimerProg {
                fires: ff.clone(),
                halt_first: false,
            })
        });
        sim.run().unwrap();
        f.get()
    };
    assert_eq!(fires, vec![(0xCD, 3), (0xAB, 10)]);
}

#[test]
fn halt_cancels_pending_timers() {
    let fires = run_timers(true, SimConfig::default());
    assert!(fires.is_empty(), "a halted processor's timers never fire");
}

#[test]
fn crash_cancels_pending_timers() {
    let fires = {
        let f: SharedCell<Vec<(u64, u64)>> = SharedCell::new();
        let mut sim = Sim::new(
            model(),
            SimConfig::default().with_faults(FaultPlan::new(1).with_crash(0, 5)),
        );
        let ff = f.clone();
        sim.set_all(move |_| {
            Box::new(TimerProg {
                fires: ff.clone(),
                halt_first: false,
            })
        });
        sim.run().unwrap();
        f.get()
    };
    assert_eq!(fires, vec![(0xCD, 3)], "only the pre-crash fire lands");
}

#[test]
fn timer_caused_sends_appear_as_retry_edges() {
    // A send submitted from on_timer carries Cause::Retry(timer), the
    // timer is recorded, and the critical path prices the timer wait as
    // a `retry` component.
    struct SendOnTimer;
    impl Process for SendOnTimer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.me() == 0 {
                ctx.timer(10, 1);
            }
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
            ctx.send(1, 0, Data::Empty);
        }
    }
    let m = model();
    let mut sim = Sim::new(m, SimConfig::default().with_msg_log(true));
    sim.set_all(|_| Box::new(SendOnTimer));
    let res = sim.run().unwrap();
    assert_eq!(res.obs.timers.len(), 1);
    let t = &res.obs.timers[0];
    assert_eq!((t.proc, t.tag, t.submit, t.fire), (0, 1, 0, 10));
    let msg = &res.obs.msgs[0];
    assert_eq!(msg.cause, Cause::Retry(0));
    let cp = critical_path(&res).unwrap();
    assert_eq!(cp.total, 10 + m.point_to_point());
    assert_eq!(cp.components.retry, 10, "the timer wait is priced as retry");
    assert_eq!(cp.components.o, 2 * m.o);
    assert_eq!(cp.components.l, m.l);
    assert_eq!(cp.components.sum(), cp.total);
}
