//! Cross-crate observability tests: the critical-path analyzer against
//! the paper's closed forms, the Perfetto export's structure, and the
//! metrics registry's accounting — the analytic formulas of `logp-core`
//! and the instrumented simulator must agree cycle-exactly.

use logp::algos::broadcast::run_optimal_broadcast;
use logp::algos::reduce::run_optimal_sum;
use logp::core::broadcast::optimal_broadcast_time;
use logp::core::summation::sum_capacity_bounded;
use logp::prelude::*;
use logp::sim::critpath::StepKind;
use logp::sim::{critical_path, perfetto_trace_json, replay_jsonl, Activity, FaultPlan, SinkSpec};

/// Three machine presets plus the paper's Figure-3/Figure-4 machines.
fn presets() -> Vec<LogP> {
    vec![
        LogP::fig3(),                       // L=6, o=2, g=4, P=8
        LogP::fig4(),                       // L=5, o=2, g=4, P=8
        LogP::new(60, 20, 40, 16).unwrap(), // CM-5-like (§5)
        LogP::new(200, 4, 8, 32).unwrap(),  // latency-dominated
        LogP::new(2, 1, 12, 24).unwrap(),   // gap-dominated
    ]
}

/// The critical path of the optimal broadcast telescopes to exactly the
/// closed-form completion on every preset, and its component breakdown
/// accounts for every cycle.
#[test]
fn broadcast_critical_path_matches_closed_form() {
    for m in presets() {
        let run = run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true));
        let cp = critical_path(&run.result).expect("msg log recorded");
        assert_eq!(
            cp.total,
            optimal_broadcast_time(&m),
            "critical path vs closed form on {m}"
        );
        assert_eq!(
            cp.total, run.completion,
            "critical path vs simulation on {m}"
        );
        assert_eq!(
            cp.components.sum(),
            cp.total,
            "components must tile the path on {m}"
        );
        // A broadcast path is pure communication: o, L, and gap/wait.
        assert_eq!(cp.components.compute, 0, "no compute on {m}");
        assert!(cp.components.o > 0, "overhead on the path on {m}");
        assert!(cp.components.l > 0, "latency on the path on {m}");
        // Every step abuts the next (no holes, no overlap).
        for w in cp.steps.windows(2) {
            assert_eq!(w[0].end, w[1].start, "path steps must tile on {m}");
        }
        assert_eq!(cp.steps.first().unwrap().start, 0);
        assert_eq!(cp.steps.last().unwrap().end, cp.total);
    }
}

/// The optimal summation completes exactly at its deadline `T`, and the
/// critical path reproduces `T` with compute attributed on the path.
#[test]
fn summation_critical_path_matches_closed_form() {
    for m in presets() {
        for t in [18u64, 28, 40] {
            if sum_capacity_bounded(&m, t, m.p) < 2 {
                continue; // degenerate budget: nothing to communicate
            }
            let run = run_optimal_sum(&m, t, SimConfig::default().with_msg_log(true));
            assert_eq!(run.completion, t, "summation deadline on {m}");
            let cp = critical_path(&run.result).expect("msg log recorded");
            assert_eq!(cp.total, t, "critical path vs deadline on {m}, T={t}");
            assert_eq!(cp.components.sum(), cp.total);
            assert!(
                cp.components.compute > 0,
                "summation path carries compute on {m}, T={t}"
            );
            for w in cp.steps.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}

/// The rendered report states the total, the nonzero components, and
/// the step sequence.
#[test]
fn critical_path_report_is_complete() {
    let m = LogP::fig3();
    let run = run_optimal_broadcast(&m, SimConfig::observed());
    let cp = critical_path(&run.result).unwrap();
    let report = cp.render();
    assert!(report.contains("critical path: 24 cycles"));
    assert!(report.contains("steps (start..end"));
    for kind in [StepKind::O, StepKind::L] {
        assert!(
            report.contains(kind.label()),
            "report must mention {:?}",
            kind
        );
    }
    assert!(report.lines().count() >= 2 + cp.steps.len());
}

/// Perfetto export of a traced broadcast: per-processor thread tracks,
/// slices, and one flow pair per delivered message.
#[test]
fn perfetto_export_has_tracks_and_flows() {
    let m = LogP::fig3();
    let run = run_optimal_broadcast(&m, SimConfig::observed().with_metrics_grid(4));
    let json = perfetto_trace_json(&run.result);
    for p in 0..m.p {
        assert!(
            json.contains(&format!("\"name\":\"P{p}\"")),
            "track for processor {p}"
        );
    }
    let flows_out = json.matches("\"ph\":\"s\"").count();
    let flows_in = json.matches("\"ph\":\"f\"").count();
    assert_eq!(flows_out as u64, run.result.stats.total_msgs);
    assert_eq!(flows_in as u64, run.result.stats.total_msgs);
    assert!(json.matches("\"ph\":\"X\"").count() >= run.result.trace.spans.len());
    assert!(json.contains("\"ph\":\"C\""), "gauge counter samples");
}

/// The metrics registry accounts for the run: message counters match the
/// engine totals, the latency histogram holds every delivery, and the
/// gauge grid covers the run.
#[test]
fn metrics_registry_accounts_for_the_run() {
    let m = LogP::fig4();
    let run = run_optimal_sum(&m, 28, SimConfig::observed().with_metrics_grid(4));
    let res = &run.result;
    let msgs = res.stats.total_msgs;
    assert_eq!(res.metrics.counter_value("messages_injected"), Some(msgs));
    assert_eq!(res.metrics.counter_value("messages_delivered"), Some(msgs));
    let h = res.metrics.histogram_named("msg_latency_cycles").unwrap();
    assert_eq!(h.count, msgs);
    // Every message latency is at least the point-to-point minimum 2o+L.
    assert!(h.min >= m.point_to_point());
    let (name, samples) = {
        let g = &res.metrics.gauges()[0];
        (g.name.clone(), g.samples.len() as u64)
    };
    assert!(
        samples >= res.stats.completion / 4,
        "gauge {name} must cover the run"
    );
    // Exports are consistent with the registry contents.
    let json = res.metrics.to_json();
    assert!(json.contains("messages_delivered"));
    assert!(json.contains("msg_latency_cycles"));
    let csv = res.metrics.to_csv();
    assert!(csv
        .lines()
        .any(|l| l.starts_with("counter,messages_delivered")));
}

/// Causal ancestry: every message in a broadcast chains back to a
/// `Cause::Start` root through `Cause::Msg` parents, and the messages
/// sent by the root carry `Cause::Start` directly.
#[test]
fn broadcast_ancestry_reaches_the_root() {
    let m = LogP::fig3();
    let run = run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true));
    let obs = &run.result.obs;
    assert_eq!(obs.msgs.len() as u64, m.p as u64 - 1);
    for rec in &obs.msgs {
        let chain = obs.ancestry(rec.id);
        assert_eq!(chain.last().copied(), Some(logp::sim::Cause::Start));
        for link in &chain[..chain.len() - 1] {
            assert!(
                matches!(link, logp::sim::Cause::Msg(_)),
                "a broadcast chain is pure message causality"
            );
        }
        if rec.src == 0 {
            assert_eq!(chain, vec![logp::sim::Cause::Start]);
        } else {
            assert!(chain.len() >= 2, "non-root senders were themselves caused");
        }
    }
}

/// The online aggregate reproduces the retained critical-path analysis
/// cycle-exactly on every preset: the terminal instant and the full
/// o/g/L/compute/... decomposition, without retaining a single record.
#[test]
fn online_aggregate_matches_critical_path() {
    for m in presets() {
        let retained = run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true));
        let cp = critical_path(&retained.result).expect("msg log recorded");
        let streamed = run_optimal_broadcast(&m, SimConfig::default().with_aggregate(true));
        let agg = streamed
            .result
            .aggregate
            .as_ref()
            .expect("aggregate maintained");
        assert!(
            streamed.result.obs.is_empty(),
            "streaming retains no records on {m}"
        );
        assert_eq!(streamed.completion, retained.completion);
        assert_eq!(agg.critical_total, cp.total, "terminal instant on {m}");
        assert_eq!(agg.critical, cp.components, "decomposition on {m}");
        assert_eq!(agg.delivered, retained.result.stats.total_msgs);
        assert_eq!(agg.msgs, retained.result.stats.total_msgs);
        // The global activity totals are the retained trace, re-summed.
        let mut o = 0;
        let mut compute = 0;
        for sp in &retained.result.trace.spans {
            match sp.activity {
                Activity::SendOverhead | Activity::RecvOverhead => o += sp.end - sp.start,
                Activity::Compute => compute += sp.end - sp.start,
                _ => {}
            }
        }
        assert_eq!(agg.global.o, o, "global o total on {m}");
        assert_eq!(agg.global.compute, compute, "global compute total on {m}");
        assert_eq!(
            agg.per_proc.iter().map(|c| c.o).sum::<u64>(),
            o,
            "per-proc o totals tile the global on {m}"
        );
    }
    // Summation puts compute segments on the path; the deadline `T` is
    // the closed form the aggregate must land on.
    for m in presets() {
        for t in [18u64, 28, 40] {
            if sum_capacity_bounded(&m, t, m.p) < 2 {
                continue;
            }
            let retained = run_optimal_sum(&m, t, SimConfig::default().with_msg_log(true));
            let cp = critical_path(&retained.result).expect("msg log recorded");
            let streamed = run_optimal_sum(&m, t, SimConfig::default().with_aggregate(true));
            let agg = streamed.result.aggregate.as_ref().unwrap();
            assert_eq!(agg.critical_total, cp.total, "summation on {m}, T={t}");
            assert_eq!(agg.critical, cp.components, "summation on {m}, T={t}");
        }
    }
}

/// Time-binned aggregation: the bins tile the global totals exactly,
/// whatever the grid.
#[test]
fn aggregate_bins_tile_the_totals() {
    let m = LogP::fig3();
    for grid in [1u64, 4, 7, 64] {
        let run = run_optimal_broadcast(&m, SimConfig::default().with_agg_grid(grid));
        let agg = run.result.aggregate.as_ref().unwrap();
        assert_eq!(agg.grid, grid);
        let mut from_bins = 0u64;
        for b in &agg.bins {
            from_bins += b.o + b.compute + b.stall + b.barrier;
        }
        assert_eq!(
            from_bins,
            agg.global.o + agg.global.compute + agg.global.stall + agg.global.barrier,
            "bins must tile the span totals at grid={grid}"
        );
    }
}

/// A JSONL streaming sink's replay reconstructs the retained `ObsLog`
/// exactly on every preset — on the classic engine verbatim, on the
/// sharded engine after canonical renumbering of the structured ids.
#[test]
fn streaming_replay_reconstructs_the_retained_log() {
    let dir = std::env::temp_dir().join("logp_obs_replay_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (i, m) in presets().into_iter().enumerate() {
        let retained = run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true));
        let path = dir.join(format!("classic_{i}.jsonl"));
        let streamed = run_optimal_broadcast(
            &m,
            SimConfig::default().with_sink(SinkSpec::Jsonl(path.clone())),
        );
        assert!(streamed.result.obs.is_empty());
        let log = replay_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(log, retained.result.obs, "classic replay on {m}");

        let spath = dir.join(format!("sharded_{i}.jsonl"));
        let sretained =
            run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true).with_shards(4));
        let sstreamed = run_optimal_broadcast(
            &m,
            SimConfig::default()
                .with_shards(4)
                .with_sink(SinkSpec::Jsonl(spath.clone())),
        );
        assert!(sstreamed.result.obs.is_empty());
        let mut slog = replay_jsonl(&std::fs::read_to_string(&spath).unwrap()).unwrap();
        slog.canonicalize();
        assert_eq!(slog, sretained.result.obs, "sharded replay on {m}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn assert_balanced_json(json: &str, what: &str) {
    let (mut depth, mut min_depth) = (0i64, 0i64);
    for b in json.bytes() {
        match b {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {}
        }
        min_depth = min_depth.min(depth);
    }
    assert_eq!(depth, 0, "{what}: unbalanced JSON");
    assert_eq!(min_depth, 0, "{what}: negative bracket depth");
}

fn flow_ids(json: &str, ph: char) -> Vec<u64> {
    let pat = format!("\"ph\":\"{ph}\",");
    let mut ids = Vec::new();
    for (at, _) in json.match_indices(&pat) {
        let rest = &json[at + pat.len()..];
        if let Some(idx) = rest.find("\"id\":") {
            let digits: String = rest[idx + 5..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            ids.push(digits.parse().unwrap());
        }
    }
    ids.sort_unstable();
    ids
}

/// Fire-and-forget scatter whose termination never depends on
/// receptions, so it survives arbitrary drop/crash plans (the optimal
/// broadcast helpers assert full delivery and cannot run faulted).
struct FaultyScatter;

impl Process for FaultyScatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.compute(u64::from(ctx.me() % 4) * 2, 0);
        ctx.timer(1 + u64::from(ctx.me() % 3), 0);
    }
    fn on_timer(&mut self, round: u64, ctx: &mut Ctx<'_>) {
        let p = u64::from(ctx.procs());
        let me = u64::from(ctx.me());
        for k in 0..2u64 {
            let dst = (me + 1 + (me * 7 + round * 13 + k * 5) % (p - 1)) % p;
            ctx.send(dst as u32, round as u32, Data::U64(me * 100 + round));
        }
        if round < 3 {
            ctx.timer(2 + (me + round) % 4, round + 1);
        }
    }
}

fn run_scatter(m: &LogP, config: SimConfig) -> logp::sim::SimResult {
    let mut sim = Sim::new(*m, config);
    sim.set_all(|_| Box::new(FaultyScatter));
    sim.run().expect("scatter terminates under any fault plan")
}

/// On crashed and faulted runs the Perfetto export must stay valid and
/// every flow id must appear exactly once as a start and once as an end
/// (no dangling arrows), for both the batch exporter and the streaming
/// sink — and the two must agree on the flow set.
#[test]
fn perfetto_flows_stay_bound_on_faulted_runs() {
    let dir = std::env::temp_dir().join("logp_perfetto_fault_test");
    std::fs::create_dir_all(&dir).unwrap();
    let m = LogP::fig3();
    let plans = [
        FaultPlan::new(0xFEED).with_drop_ppm(200_000),
        FaultPlan::new(0xBEEF)
            .with_dup_ppm(150_000)
            .with_delay(100_000, 9),
        FaultPlan::new(0xC0DE)
            .with_drop_ppm(80_000)
            .with_crash(m.p - 1, 12),
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        let res = run_scatter(&m, SimConfig::observed().with_faults(plan.clone()));
        let json = perfetto_trace_json(&res);
        assert_balanced_json(&json, "batch export");
        let outs = flow_ids(&json, 's');
        let ins = flow_ids(&json, 'f');
        assert_eq!(outs, ins, "every flow start needs a matching end");
        let mut uniq = outs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), outs.len(), "flow ids must be unique");

        // The streaming writer produces the same flow set (classic
        // streaming ids are the retained dense ids).
        let path = dir.join(format!("fault_{i}.trace.json"));
        let sres = run_scatter(
            &m,
            SimConfig::default()
                .with_faults(plan)
                .with_sink(SinkSpec::Perfetto(path.clone())),
        );
        assert_eq!(sres.stats.completion, res.stats.completion);
        let sjson = std::fs::read_to_string(&path).unwrap();
        assert_balanced_json(&sjson, "streaming export");
        assert_eq!(flow_ids(&sjson, 's'), outs, "streaming flow set");
        assert_eq!(flow_ids(&sjson, 'f'), ins, "streaming flow ends");
    }
    // A zero-overhead machine has zero-width overhead slices: flows
    // cannot bind, so none may be emitted.
    let m0 = LogP::new(4, 0, 1, 16).unwrap();
    let run = run_optimal_broadcast(&m0, SimConfig::observed());
    let json = perfetto_trace_json(&run.result);
    assert_balanced_json(&json, "o=0 export");
    assert!(flow_ids(&json, 's').is_empty(), "no flows at o=0");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Engine vitals describe the run without participating in result
/// equality: lane event counts tile the total, windows advance, and
/// two identical runs compare equal despite different wall clocks.
#[test]
fn engine_vitals_describe_the_run() {
    let m = LogP::new(14, 3, 5, 27).unwrap();
    let classic = run_optimal_broadcast(&m, SimConfig::default());
    let v = &classic.result.vitals;
    assert_eq!(v.engine, "classic");
    assert_eq!(v.lanes, 1);
    assert_eq!(v.events, classic.result.stats.events);
    assert!(v.lane_events.is_empty());

    let sharded = run_optimal_broadcast(&m, SimConfig::default().with_shards(4));
    let sv = &sharded.result.vitals;
    assert_eq!(sv.engine, "sharded");
    assert!(sv.lanes >= 2);
    assert_eq!(sv.lane_events.len(), sv.lanes as usize);
    assert_eq!(
        sv.lane_events.iter().sum::<u64>(),
        sv.events,
        "lane events must tile the total"
    );
    assert!(sv.windows > 0, "at least one lookahead window ran");
    assert!(sv.bucket_depth_max >= 1);
    let json = sv.to_json();
    for key in [
        "\"engine\": \"sharded\"",
        "\"events\":",
        "\"lane_events\": [",
        "\"windows\":",
        "\"fast_forwards\":",
        "\"far_spills\":",
        "\"lane_imbalance\":",
    ] {
        assert!(json.contains(key), "vitals JSON must carry {key}");
    }
    // Vitals are diagnostics, not results: reruns compare equal.
    let again = run_optimal_broadcast(&m, SimConfig::default().with_shards(4));
    assert_eq!(sharded.result, again.result);
}

/// Observability off is really off: identical stats to an observed run,
/// empty logs, and no metrics.
#[test]
fn disabled_observability_changes_nothing() {
    let m = LogP::new(60, 20, 40, 16).unwrap();
    let plain = run_optimal_broadcast(&m, SimConfig::default());
    let observed = run_optimal_broadcast(&m, SimConfig::observed().with_metrics_grid(8));
    assert_eq!(plain.completion, observed.completion);
    assert_eq!(
        plain.result.stats.events, observed.result.stats.events,
        "observation must not perturb the event schedule"
    );
    assert!(plain.result.obs.is_empty());
    assert!(plain.result.trace.spans.is_empty());
    assert!(plain.result.metrics.gauges().is_empty());
}
