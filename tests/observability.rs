//! Cross-crate observability tests: the critical-path analyzer against
//! the paper's closed forms, the Perfetto export's structure, and the
//! metrics registry's accounting — the analytic formulas of `logp-core`
//! and the instrumented simulator must agree cycle-exactly.

use logp::algos::broadcast::run_optimal_broadcast;
use logp::algos::reduce::run_optimal_sum;
use logp::core::broadcast::optimal_broadcast_time;
use logp::core::summation::sum_capacity_bounded;
use logp::prelude::*;
use logp::sim::critpath::StepKind;
use logp::sim::{critical_path, perfetto_trace_json};

/// Three machine presets plus the paper's Figure-3/Figure-4 machines.
fn presets() -> Vec<LogP> {
    vec![
        LogP::fig3(),                       // L=6, o=2, g=4, P=8
        LogP::fig4(),                       // L=5, o=2, g=4, P=8
        LogP::new(60, 20, 40, 16).unwrap(), // CM-5-like (§5)
        LogP::new(200, 4, 8, 32).unwrap(),  // latency-dominated
        LogP::new(2, 1, 12, 24).unwrap(),   // gap-dominated
    ]
}

/// The critical path of the optimal broadcast telescopes to exactly the
/// closed-form completion on every preset, and its component breakdown
/// accounts for every cycle.
#[test]
fn broadcast_critical_path_matches_closed_form() {
    for m in presets() {
        let run = run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true));
        let cp = critical_path(&run.result).expect("msg log recorded");
        assert_eq!(
            cp.total,
            optimal_broadcast_time(&m),
            "critical path vs closed form on {m}"
        );
        assert_eq!(
            cp.total, run.completion,
            "critical path vs simulation on {m}"
        );
        assert_eq!(
            cp.components.sum(),
            cp.total,
            "components must tile the path on {m}"
        );
        // A broadcast path is pure communication: o, L, and gap/wait.
        assert_eq!(cp.components.compute, 0, "no compute on {m}");
        assert!(cp.components.o > 0, "overhead on the path on {m}");
        assert!(cp.components.l > 0, "latency on the path on {m}");
        // Every step abuts the next (no holes, no overlap).
        for w in cp.steps.windows(2) {
            assert_eq!(w[0].end, w[1].start, "path steps must tile on {m}");
        }
        assert_eq!(cp.steps.first().unwrap().start, 0);
        assert_eq!(cp.steps.last().unwrap().end, cp.total);
    }
}

/// The optimal summation completes exactly at its deadline `T`, and the
/// critical path reproduces `T` with compute attributed on the path.
#[test]
fn summation_critical_path_matches_closed_form() {
    for m in presets() {
        for t in [18u64, 28, 40] {
            if sum_capacity_bounded(&m, t, m.p) < 2 {
                continue; // degenerate budget: nothing to communicate
            }
            let run = run_optimal_sum(&m, t, SimConfig::default().with_msg_log(true));
            assert_eq!(run.completion, t, "summation deadline on {m}");
            let cp = critical_path(&run.result).expect("msg log recorded");
            assert_eq!(cp.total, t, "critical path vs deadline on {m}, T={t}");
            assert_eq!(cp.components.sum(), cp.total);
            assert!(
                cp.components.compute > 0,
                "summation path carries compute on {m}, T={t}"
            );
            for w in cp.steps.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}

/// The rendered report states the total, the nonzero components, and
/// the step sequence.
#[test]
fn critical_path_report_is_complete() {
    let m = LogP::fig3();
    let run = run_optimal_broadcast(&m, SimConfig::observed());
    let cp = critical_path(&run.result).unwrap();
    let report = cp.render();
    assert!(report.contains("critical path: 24 cycles"));
    assert!(report.contains("steps (start..end"));
    for kind in [StepKind::O, StepKind::L] {
        assert!(
            report.contains(kind.label()),
            "report must mention {:?}",
            kind
        );
    }
    assert!(report.lines().count() >= 2 + cp.steps.len());
}

/// Perfetto export of a traced broadcast: per-processor thread tracks,
/// slices, and one flow pair per delivered message.
#[test]
fn perfetto_export_has_tracks_and_flows() {
    let m = LogP::fig3();
    let run = run_optimal_broadcast(&m, SimConfig::observed().with_metrics_grid(4));
    let json = perfetto_trace_json(&run.result);
    for p in 0..m.p {
        assert!(
            json.contains(&format!("\"name\":\"P{p}\"")),
            "track for processor {p}"
        );
    }
    let flows_out = json.matches("\"ph\":\"s\"").count();
    let flows_in = json.matches("\"ph\":\"f\"").count();
    assert_eq!(flows_out as u64, run.result.stats.total_msgs);
    assert_eq!(flows_in as u64, run.result.stats.total_msgs);
    assert!(json.matches("\"ph\":\"X\"").count() >= run.result.trace.spans.len());
    assert!(json.contains("\"ph\":\"C\""), "gauge counter samples");
}

/// The metrics registry accounts for the run: message counters match the
/// engine totals, the latency histogram holds every delivery, and the
/// gauge grid covers the run.
#[test]
fn metrics_registry_accounts_for_the_run() {
    let m = LogP::fig4();
    let run = run_optimal_sum(&m, 28, SimConfig::observed().with_metrics_grid(4));
    let res = &run.result;
    let msgs = res.stats.total_msgs;
    assert_eq!(res.metrics.counter_value("messages_injected"), Some(msgs));
    assert_eq!(res.metrics.counter_value("messages_delivered"), Some(msgs));
    let h = res.metrics.histogram_named("msg_latency_cycles").unwrap();
    assert_eq!(h.count, msgs);
    // Every message latency is at least the point-to-point minimum 2o+L.
    assert!(h.min >= m.point_to_point());
    let (name, samples) = {
        let g = &res.metrics.gauges()[0];
        (g.name.clone(), g.samples.len() as u64)
    };
    assert!(
        samples >= res.stats.completion / 4,
        "gauge {name} must cover the run"
    );
    // Exports are consistent with the registry contents.
    let json = res.metrics.to_json();
    assert!(json.contains("messages_delivered"));
    assert!(json.contains("msg_latency_cycles"));
    let csv = res.metrics.to_csv();
    assert!(csv
        .lines()
        .any(|l| l.starts_with("counter,messages_delivered")));
}

/// Causal ancestry: every message in a broadcast chains back to a
/// `Cause::Start` root through `Cause::Msg` parents, and the messages
/// sent by the root carry `Cause::Start` directly.
#[test]
fn broadcast_ancestry_reaches_the_root() {
    let m = LogP::fig3();
    let run = run_optimal_broadcast(&m, SimConfig::default().with_msg_log(true));
    let obs = &run.result.obs;
    assert_eq!(obs.msgs.len() as u64, m.p as u64 - 1);
    for rec in &obs.msgs {
        let chain = obs.ancestry(rec.id);
        assert_eq!(chain.last().copied(), Some(logp::sim::Cause::Start));
        for link in &chain[..chain.len() - 1] {
            assert!(
                matches!(link, logp::sim::Cause::Msg(_)),
                "a broadcast chain is pure message causality"
            );
        }
        if rec.src == 0 {
            assert_eq!(chain, vec![logp::sim::Cause::Start]);
        } else {
            assert!(chain.len() >= 2, "non-root senders were themselves caused");
        }
    }
}

/// Observability off is really off: identical stats to an observed run,
/// empty logs, and no metrics.
#[test]
fn disabled_observability_changes_nothing() {
    let m = LogP::new(60, 20, 40, 16).unwrap();
    let plain = run_optimal_broadcast(&m, SimConfig::default());
    let observed = run_optimal_broadcast(&m, SimConfig::observed().with_metrics_grid(8));
    assert_eq!(plain.completion, observed.completion);
    assert_eq!(
        plain.result.stats.events, observed.result.stats.events,
        "observation must not perturb the event schedule"
    );
    assert!(plain.result.obs.is_empty());
    assert!(plain.result.trace.spans.is_empty());
    assert!(plain.result.metrics.gauges().is_empty());
}
