//! The calibration loop, end to end: measuring a machine recovers the
//! parameters it was built with, and algorithms designed against the
//! *measured* parameters are identical to those designed against the
//! truth — §4.1.4's methodology (calibrate, then predict) closed into a
//! standing oracle.

use logp::calib::{
    calibrate, calibrate_sim_sweep, g_knee, g_of_load, CalibConfig, PacketMachine, SimMachine,
};
use logp::core::broadcast::{optimal_broadcast_time, optimal_broadcast_tree};
use logp::core::summation::min_sum_time;
use logp::net::{table1, Topology};
use logp::prelude::*;
use logp::sim::runner::Threads;

/// Every preset the repo knows, plus the paper's Figure 3 toy machine.
fn preset_models() -> Vec<(String, LogP)> {
    let mut v: Vec<(String, LogP)> = MachinePreset::all()
        .into_iter()
        .map(|p| (p.name.to_string(), p.logp))
        .collect();
    v.push(("fig3 toy".into(), LogP::fig3()));
    v
}

/// The tentpole oracle: calibrating the simulator configured with any
/// preset's (L, o, g, P) recovers exactly those integers. On machines
/// with `g > o` every estimate is tight (`recovers_exactly`); on the
/// `o = g` presets the gap is only observable as the upper bound
/// `max(g, o)`, which still rounds to the true value.
#[test]
fn sim_backend_round_trips_every_preset() {
    for (name, truth) in preset_models() {
        let cal = calibrate(&mut SimMachine::new(truth), &CalibConfig::default());
        assert_eq!(cal.model(), truth, "{name}: {:?}", cal.logp);
        assert_eq!(cal.capacity, truth.capacity(), "{name}");
        assert!(!cal.gap_limited, "{name}: presets are not gap-limited");
        if truth.g > truth.o {
            assert!(!cal.overhead_bound, "{name}");
            assert!(cal.logp.recovers_exactly(&truth), "{name}: {}", cal.logp);
        } else {
            // o >= g: the flood interval is pinned by the overhead, so g
            // is an upper bound with a band reaching the hidden truth.
            assert!(cal.overhead_bound, "{name}");
            assert!(
                cal.logp.g.value - cal.logp.g.ci <= truth.g as f64,
                "{name}: band must contain the hidden gap"
            );
        }
    }
}

/// Calibration under simulated timing noise still lands within a few
/// percent: the Theil-Sen fits absorb jitter instead of folding it into
/// the slopes.
#[test]
fn sim_backend_tolerates_jitter() {
    let truth = MachinePreset::cm5().logp;
    let noisy = SimConfig::default().with_jitter(3).with_seed(7);
    let cal = calibrate(
        &mut SimMachine::with_config(truth, noisy),
        &CalibConfig::default(),
    );
    assert!(cal.logp.o.within(truth.o as f64, 0.05), "o {}", cal.logp.o);
    assert!(cal.logp.g.within(truth.g as f64, 0.05), "g {}", cal.logp.g);
    // Jitter shaves up to 3 cycles off each flight, so L lands in the
    // jitter band below its configured value.
    assert!(
        cal.logp.l.value > truth.l as f64 - 4.0 && cal.logp.l.value < truth.l as f64 + 1.0,
        "L {} outside the jitter band",
        cal.logp.l
    );
}

/// Closing the loop: broadcast trees and summation schedules designed
/// from the calibrated parameters are identical to those designed from
/// the true ones, on every preset.
#[test]
fn calibrated_parameters_reproduce_algorithm_designs() {
    for (name, truth) in preset_models() {
        let cal = calibrate(&mut SimMachine::new(truth), &CalibConfig::quick());
        let measured = cal.model();
        let (t, c) = (truth.with_p(32), measured.with_p(32));
        assert_eq!(
            optimal_broadcast_tree(&c).children(),
            optimal_broadcast_tree(&t).children(),
            "{name}: calibrated broadcast tree differs"
        );
        assert_eq!(
            optimal_broadcast_time(&c),
            optimal_broadcast_time(&t),
            "{name}"
        );
        for n in [100, 5_000] {
            assert_eq!(
                min_sum_time(&c, n, 32),
                min_sum_time(&t, n, 32),
                "{name}: n={n}"
            );
        }
    }
}

/// The packet-network backend cross-checks Table 1: below saturation the
/// measured gap sits within 10% of the datasheet-derived serialization
/// value, and past the knee the measured `g(ρ)` rises — §5.3 as a
/// calibration observable.
#[test]
fn packet_backend_matches_table1_and_saturates() {
    // Monsoon: 16-bit channels, Tsnd + Trcv = 10 cycles => o = 5,
    // serialize(160 bits) = 10 > o.
    let monsoon = table1()[4].clone();
    let base = PacketMachine::from_timing(&monsoon, Topology::Butterfly, 64, 160);
    let cfg = CalibConfig::quick().with_endpoints(0, 40);

    let cal = calibrate(&mut base.clone(), &cfg);
    let derived = base.derived_g() as f64;
    assert!(
        cal.logp.g.within(derived, 0.1),
        "unloaded g {} vs Table-1-derived {derived}",
        cal.logp.g
    );
    assert!(
        cal.logp.o.within(base.overhead as f64, 0.1),
        "o {} vs datasheet {}",
        cal.logp.o,
        base.overhead
    );

    let curve = g_of_load(&base, &[0.0, 0.3, 0.6, 0.9], &cfg);
    assert!(
        curve[0].1.within(derived, 0.1),
        "below saturation the curve starts on the datasheet gap"
    );
    let knee = g_knee(&curve, 1.3);
    assert!(knee.is_some(), "curve never saturated: {curve:?}");
    let hot = curve.last().expect("nonempty").1.value;
    assert!(
        hot > 1.3 * curve[0].1.value,
        "g must rise past the knee: {} -> {hot}",
        curve[0].1.value
    );
}

/// Calibration sweeps ride the deterministic runner: bit-identical
/// results at any worker count.
#[test]
fn calibration_sweeps_are_thread_count_independent() {
    let machines: Vec<LogP> = preset_models().into_iter().map(|(_, m)| m).collect();
    let cfg = CalibConfig::quick();
    let serial = calibrate_sim_sweep(&machines, &SimConfig::default(), &cfg, Threads::Fixed(1));
    for threads in [Threads::Fixed(2), Threads::Fixed(8)] {
        assert_eq!(
            serial,
            calibrate_sim_sweep(&machines, &SimConfig::default(), &cfg, threads),
            "sweep results must not depend on {threads:?}"
        );
    }
}
