//! Integration tests for the hierarchical LogP extension, spanning
//! logp-core (model + analytic evaluators), logp-sim (per-pair engine
//! parameters, per-level capacity, topology-aligned lanes), logp-algos
//! (executable level-aware collectives), logp-calib (clustered probing)
//! and logp-wl (hierarchical workload runs). The normative description
//! of what is pinned here is `docs/HIERARCHY.md`.

use logp::algos::hier::{
    flat_tree, hier_tree, run_flat_broadcast_on, run_hier_allreduce, run_hier_broadcast,
    run_hier_sum, run_tree_allreduce_on, run_tree_broadcast_on, run_tree_reduce_on,
};
use logp::calib::hier::{calibrate_hier, HierSimMachine};
use logp::calib::CalibConfig;
use logp::core::broadcast::{optimal_broadcast_tree, tree_broadcast_times};
use logp::core::hier::{
    eval_allreduce, eval_broadcast, eval_reduce, flat_allreduce_time_on, flat_broadcast_time_on,
    flat_sum_time_on, hier_allreduce_time, hier_broadcast_time, hier_sum_time, Hierarchy, Level,
};
use logp::prelude::*;
use logp::wl::{broadcast_workload, preset, run_workload, run_workload_hier, PRESET_NAMES};

/// The steep two-level machine used throughout: local links an order
/// of magnitude cheaper than the fabric.
fn steep() -> Hierarchy {
    Hierarchy::two_level((6, 2, 4), 8, (100, 10, 12), 4).unwrap()
}

/// A three-level machine: socket → node → cluster.
fn three_level() -> Hierarchy {
    Hierarchy::new(vec![
        Level::new(4, 1, 2, 4).unwrap(),     // socket: 4 ranks
        Level::new(20, 4, 6, 2).unwrap(),    // node: 2 sockets
        Level::new(300, 12, 16, 3).unwrap(), // cluster: 3 nodes
    ])
    .unwrap()
}

fn vals(p: u32) -> Vec<f64> {
    (0..p).map(|q| (q % 7) as f64 + 0.5).collect()
}

// -------------------------------------------------------------------
// Flat-projection identity: a depth-1 hierarchy IS the flat machine.
// -------------------------------------------------------------------

/// On all five oracle presets, a broadcast executed through a depth-1
/// `Hierarchy` (which exercises the engine's per-pair parameter path)
/// reproduces the flat closed form cycle-for-cycle, per processor.
#[test]
fn depth_one_hierarchy_matches_flat_closed_forms_on_all_presets() {
    for name in PRESET_NAMES {
        let m = preset(name).unwrap();
        let h = Hierarchy::flat(&m);
        let tree = optimal_broadcast_tree(&m).children();
        let run = run_tree_broadcast_on(&h, &tree, 2.5, SimConfig::default());
        assert_eq!(
            run.per_proc,
            tree_broadcast_times(&m, &tree),
            "depth-1 broadcast diverged from the flat closed form on {name}"
        );
    }
}

/// Workload-level identity: same DAG, same config, full `SimResult`
/// equality between the flat engine and a depth-1 hierarchy — classic
/// and sharded. (The `hier_sweep --check` CI pin extends this to all
/// three corpus collectives.)
#[test]
fn depth_one_hierarchy_runs_workloads_bit_identically() {
    for name in PRESET_NAMES {
        let m = preset(name).unwrap();
        let wl = broadcast_workload(&m);
        for shards in [0u32, 4] {
            let cfg = || {
                let c = SimConfig::default();
                if shards == 0 {
                    c
                } else {
                    c.with_shards(shards)
                }
            };
            let flat = run_workload(&wl, &m, cfg()).unwrap();
            let hier = run_workload_hier(&wl, &Hierarchy::flat(&m), cfg()).unwrap();
            assert_eq!(
                flat.result, hier.result,
                "workload diverged on {name} at {shards} shards"
            );
        }
    }
}

// -------------------------------------------------------------------
// Analytic-vs-simulated closure, per collective.
// -------------------------------------------------------------------

/// Simulated per-processor times equal the analytic evaluators exactly
/// — for both the hierarchical and the topology-oblivious tree, on
/// two- and three-level machines, for all three collectives.
#[test]
fn analytic_evaluators_close_with_simulation() {
    for h in [steep(), three_level()] {
        let v = vals(h.p());
        for tree in [hier_tree(&h), flat_tree(&h)] {
            let b = run_tree_broadcast_on(&h, &tree, 1.0, SimConfig::default());
            assert_eq!(b.per_proc, eval_broadcast(&h, &tree), "broadcast closure");
            let r = run_tree_reduce_on(&h, &tree, &v, SimConfig::default());
            assert_eq!(r.per_proc, eval_reduce(&h, &tree), "reduce closure");
            let a = run_tree_allreduce_on(&h, &tree, &tree, &v, SimConfig::default());
            assert_eq!(
                a.per_proc,
                eval_allreduce(&h, &tree, &tree),
                "allreduce closure"
            );
        }
    }
}

/// The convenience time formulas agree with the convenience runners.
#[test]
fn closed_form_times_match_runner_completions() {
    let h = steep();
    let v = vals(h.p());
    let cfg = SimConfig::default;
    assert_eq!(
        run_hier_broadcast(&h, 1.0, cfg()).completion,
        hier_broadcast_time(&h)
    );
    assert_eq!(
        run_flat_broadcast_on(&h, 1.0, cfg()).completion,
        flat_broadcast_time_on(&h)
    );
    assert_eq!(run_hier_sum(&h, &v, cfg()).per_proc[0], hier_sum_time(&h));
    assert_eq!(
        run_hier_allreduce(&h, &v, cfg()).completion,
        hier_allreduce_time(&h)
    );
    assert!(hier_sum_time(&h) <= flat_sum_time_on(&h));
    assert!(hier_allreduce_time(&h) <= flat_allreduce_time_on(&h));
}

// -------------------------------------------------------------------
// Lane/worker-count invariance on hierarchical machines.
// -------------------------------------------------------------------

/// Hierarchical collective runs are bit-identical across lane counts
/// and under the parallel window executor, and agree with the classic
/// engine on the collective outcome. Lane partitions align to topology
/// boundaries, so no lane splits a group.
#[test]
fn hierarchical_runs_are_lane_and_worker_invariant() {
    for h in [steep(), three_level()] {
        let t = hier_tree(&h);
        let v = vals(h.p());
        let run = |cfg: SimConfig| run_tree_allreduce_on(&h, &t, &t, &v, cfg);
        let classic = run(SimConfig::default());
        let two = run(SimConfig::default().with_shards(2));
        for shards in [4u32, 8] {
            assert_eq!(
                two.result,
                run(SimConfig::default().with_shards(shards)).result,
                "lane counts 2 vs {shards} diverged"
            );
            assert_eq!(
                two.result,
                run(SimConfig::default().with_shards(shards).with_workers(2)).result,
                "parallel executor diverged at {shards} lanes"
            );
        }
        assert_eq!(
            (classic.completion, classic.value, classic.messages),
            (two.completion, two.value, two.messages),
            "classic vs sharded outcome diverged"
        );
    }
}

// -------------------------------------------------------------------
// Crossover, calibration, workload plumbing.
// -------------------------------------------------------------------

/// The acceptance oracle in miniature: on the steep machine the
/// hierarchical schedule wins every collective; on a degenerate
/// hierarchy (outer links as cheap as inner) the flat-optimal tree
/// wins — and in both regimes the analytic formulas predicted it.
#[test]
fn crossover_has_the_predicted_sign_in_both_regimes() {
    let deep = steep();
    assert!(hier_broadcast_time(&deep) < flat_broadcast_time_on(&deep));
    assert!(
        run_hier_broadcast(&deep, 1.0, SimConfig::default()).completion
            < run_flat_broadcast_on(&deep, 1.0, SimConfig::default()).completion
    );

    let degenerate = Hierarchy::two_level((6, 2, 4), 8, (2, 2, 4), 4).unwrap();
    assert!(hier_broadcast_time(&degenerate) > flat_broadcast_time_on(&degenerate));
    assert!(
        run_hier_broadcast(&degenerate, 1.0, SimConfig::default()).completion
            > run_flat_broadcast_on(&degenerate, 1.0, SimConfig::default()).completion
    );
}

/// Clustered probing recovers a three-level machine level-for-level
/// and the result round-trips through `Hierarchy::from_estimates`.
#[test]
fn clustered_probing_recovers_a_three_level_machine() {
    let truth = three_level();
    let cal = calibrate_hier(
        &mut HierSimMachine::new(truth.clone()),
        &CalibConfig::quick(),
    );
    assert_eq!(cal.depth(), 3);
    assert_eq!(cal.group_sizes, vec![4, 8, 24]);
    assert_eq!(cal.hierarchy, truth);
}

/// `run_workload_hier` prices messages by level: the same DAG completes
/// faster when its traffic stays inside a node than when the hierarchy
/// says the endpoints sit on different nodes.
#[test]
fn workloads_pay_level_aware_prices() {
    let h = steep();
    let wl = logp::wl::load_workload(&format!(
        "workload pair\nprocs {}\na: send 0 -> 1 data=1\nb: recv 0 -> 1\n\
         c: send 0 -> 8 data=1\nd: recv 0 -> 8\n",
        h.p()
    ))
    .unwrap();
    let run = run_workload_hier(&wl, &h, SimConfig::default()).unwrap();
    // Node-local delivery (0 -> 1) uses the inner level; cross-node
    // (0 -> 8) pays the outer one.
    let inner = h.level(0);
    let outer = h.level(1);
    assert_eq!(run.node_times[1], inner.point_to_point());
    // The second send leaves one gap after the first.
    assert_eq!(
        run.node_times[3],
        inner.g.max(inner.o) + outer.point_to_point()
    );

    // Mismatched processor counts are a loadable-but-unrunnable error,
    // reported, not panicked.
    let wrong =
        logp::wl::load_workload("workload w\nprocs 3\nx: send 0 -> 1\ny: recv 0 -> 1\n").unwrap();
    assert!(run_workload_hier(&wrong, &h, SimConfig::default()).is_err());
}

/// Determinism under jitter: a seeded noisy hierarchical run is
/// reproducible and still computes the right value.
#[test]
fn seeded_jitter_is_deterministic_on_hierarchies() {
    let h = steep();
    let v = vals(h.p());
    let cfg = || SimConfig::default().with_jitter(3).with_seed(42);
    let a = run_hier_allreduce(&h, &v, cfg());
    let b = run_hier_allreduce(&h, &v, cfg());
    assert_eq!(a.result, b.result);
    assert_eq!(a.value, v.iter().sum::<f64>());
}
