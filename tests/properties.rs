//! Property-based tests (proptest) over the model, the simulator, and the
//! algorithms — the invariants that must hold for *every* machine in the
//! 4-dimensional parameter space, not just the paper's examples.

use logp::algos::broadcast::run_optimal_broadcast;
use logp::algos::reduce::run_optimal_sum;
use logp::algos::scan::run_scan;
use logp::algos::sort::run_splitter_sort;
use logp::core::broadcast::{
    broadcast_reach, optimal_broadcast_time, optimal_broadcast_tree, shape_broadcast_time,
    TreeShape,
};
use logp::core::summation::{min_sum_time, procs_needed, sum_capacity, sum_capacity_bounded};
use logp::prelude::*;
use proptest::prelude::*;

/// A small random machine. Keeps parameters modest so simulations stay
/// fast under proptest's many cases.
fn machine() -> impl Strategy<Value = LogP> {
    (1u64..=20, 0u64..=8, 1u64..=10, 2u32..=24)
        .prop_map(|(l, o, g, p)| LogP::new(l, o, g, p).expect("generated parameters are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The greedy broadcast tree always matches the reach-based optimum,
    /// and the simulator reproduces it cycle-exactly.
    #[test]
    fn broadcast_analytic_equals_simulated(m in machine()) {
        let t = optimal_broadcast_time(&m);
        prop_assert_eq!(optimal_broadcast_tree(&m).completion(), t);
        let run = run_optimal_broadcast(&m, SimConfig::default());
        prop_assert_eq!(run.completion, t);
        prop_assert_eq!(run.messages, m.p as u64 - 1);
    }

    /// No fixed tree shape ever beats the optimal broadcast.
    #[test]
    fn optimal_broadcast_is_optimal(m in machine()) {
        let t = optimal_broadcast_time(&m);
        for shape in [TreeShape::Flat, TreeShape::Linear, TreeShape::Binary, TreeShape::Binomial] {
            prop_assert!(t <= shape_broadcast_time(&m, shape));
        }
    }

    /// Reach is monotone in time and hits P at the optimal time.
    #[test]
    fn reach_is_monotone(m in machine()) {
        let t = optimal_broadcast_time(&m);
        let mut prev = 0;
        for tt in (0..=t).step_by(1 + (t as usize / 50)) {
            let r = broadcast_reach(&m, tt);
            prop_assert!(r >= prev);
            prev = r;
        }
        prop_assert!(broadcast_reach(&m, t) >= m.p as u64);
        if t > 0 {
            prop_assert!(broadcast_reach(&m, t - 1) < m.p as u64);
        }
    }

    /// Jitter can only improve the broadcast, and the result stays a
    /// complete broadcast.
    #[test]
    fn jitter_never_slows_broadcast(m in machine(), seed in 0u64..1000) {
        let bound = optimal_broadcast_time(&m);
        let cfg = SimConfig::default().with_jitter(m.l.saturating_sub(1)).with_seed(seed);
        let run = run_optimal_broadcast(&m, cfg);
        prop_assert!(run.completion <= bound);
        prop_assert_eq!(run.arrivals.len(), m.p as usize);
    }

    /// Summation capacity is monotone in both time and processors, the
    /// bounded value never exceeds the unbounded one, and beyond
    /// `procs_needed` the bound is immaterial.
    #[test]
    fn summation_capacity_laws(m in machine(), t in 0u64..80) {
        let unb = sum_capacity(&m, t);
        let mut prev = 0;
        for p in [1u32, 2, 4, 8, 32] {
            let c = sum_capacity_bounded(&m, t, p);
            prop_assert!(c >= prev);
            prop_assert!(c <= unb);
            prev = c;
        }
        prop_assert!(sum_capacity_bounded(&m, t + 1, 8) >= sum_capacity_bounded(&m, t, 8));
        let needed = procs_needed(&m, t);
        if needed <= 1_000 {
            prop_assert_eq!(sum_capacity_bounded(&m, t, needed as u32), unb);
        }
    }

    /// The executable optimal summation completes exactly at its deadline
    /// with the correct total, for arbitrary machines and budgets.
    #[test]
    fn summation_schedule_is_exact(m in machine(), t in 1u64..60) {
        let run = run_optimal_sum(&m, t, SimConfig::default());
        prop_assert_eq!(run.completion, t);
        prop_assert_eq!(run.inputs, sum_capacity_bounded(&m, t, m.p));
        let expected: f64 = (0..run.inputs).map(|v| v as f64).sum();
        prop_assert_eq!(run.total, expected);
    }

    /// `min_sum_time` is the exact inverse of bounded capacity.
    #[test]
    fn min_sum_time_inverts_capacity(m in machine(), n in 1u64..400) {
        let t = min_sum_time(&m, n, m.p);
        prop_assert!(sum_capacity_bounded(&m, t, m.p) >= n);
        if t > 0 {
            prop_assert!(sum_capacity_bounded(&m, t - 1, m.p) < n);
        }
    }

    /// The scan is correct for arbitrary inputs, processor counts and
    /// jitter seeds (message reordering must not matter).
    #[test]
    fn scan_correct_under_jitter(
        m in machine(),
        values in proptest::collection::vec(0u64..1000, 1..60),
        seed in 0u64..100,
    ) {
        // Pad to a multiple of P.
        let p = m.p as usize;
        let mut vals = values;
        while vals.len() % p != 0 {
            vals.push(0);
        }
        let cfg = SimConfig::default().with_jitter(m.l / 2).with_seed(seed);
        let run = run_scan(&m, &vals, cfg);
        let expect: Vec<u64> = vals
            .iter()
            .scan(0u64, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        prop_assert_eq!(run.prefix, expect);
    }

    /// Splitter sort produces the sorted permutation for arbitrary keys
    /// under jitter (power-of-two P required by the broadcast stage).
    #[test]
    fn splitter_sort_correct_under_jitter(
        keys in proptest::collection::vec(0u64..10_000, 16..200),
        seed in 0u64..50,
    ) {
        let m = LogP::new(8, 2, 3, 4).unwrap();
        let cfg = SimConfig::default().with_jitter(5).with_seed(seed);
        let run = run_splitter_sort(&m, &keys, cfg);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(run.output, expect);
    }

    /// Simulator conservation laws under random all-to-all traffic:
    /// capacity never exceeded, all messages delivered, identical stats
    /// on a re-run (determinism).
    #[test]
    fn engine_conservation_laws(m in machine(), msgs_per in 1u64..6, seed in 0u64..100) {
        let cfg = SimConfig::default().with_jitter(m.l / 3).with_seed(seed);
        let run = |cfg: SimConfig| {
            let mut sim = Sim::new(m, cfg);
            sim.set_all(|me| {
                Box::new(logp::sim::process::StartFn(move |ctx: &mut Ctx<'_>| {
                    for i in 0..msgs_per {
                        let dst = (me + 1 + (i as u32 % (ctx.procs() - 1))) % ctx.procs();
                        ctx.send(dst, 0, Data::U64(i));
                    }
                }))
            });
            sim.run().expect("terminates")
        };
        let a = run(cfg.clone());
        prop_assert_eq!(a.stats.total_msgs, msgs_per * m.p as u64);
        prop_assert!(a.stats.max_inflight_per_dst <= m.capacity());
        prop_assert!(a.stats.max_inflight_per_src <= m.capacity());
        let b = run(cfg);
        prop_assert_eq!(a.stats.completion, b.stats.completion);
        prop_assert_eq!(a.stats.events, b.stats.events);
    }

    /// Accounting closes: busy time never exceeds completion time for any
    /// processor.
    #[test]
    fn accounting_is_bounded(m in machine(), msgs_per in 1u64..5) {
        let mut sim = Sim::new(m, SimConfig::default());
        sim.set_all(move |me| {
            Box::new(logp::sim::process::StartFn(move |ctx: &mut Ctx<'_>| {
                ctx.compute(7, 0);
                for _ in 0..msgs_per {
                    ctx.send((me + 1) % ctx.procs(), 0, Data::Empty);
                }
            }))
        });
        let r = sim.run().expect("terminates");
        for st in &r.stats.procs {
            prop_assert!(st.busy() <= r.stats.completion);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All-gather assembles identical vectors on arbitrary machines and
    /// completes at its analytic ring bound (without jitter).
    #[test]
    fn allgather_matches_ring_bound(m in machine(), seed in 0u64..40) {
        use logp::algos::gather::{allgather_ring_time, run_allgather_ring};
        let values: Vec<u64> = (0..m.p as u64).map(|i| i * 3 + seed).collect();
        let run = run_allgather_ring(&m, &values, SimConfig::default());
        prop_assert_eq!(&run.blocks, &values);
        if m.p >= 2 {
            prop_assert_eq!(run.completion, allgather_ring_time(&m));
        }
    }

    /// Parameter extraction recovers any generated machine to within 5%,
    /// outside the gap-limited regime the method itself documents.
    #[test]
    fn extraction_recovers_random_machines(m in machine()) {
        use logp::algos::measure::extract_params;
        let two = m.with_p(2);
        prop_assume!(2 * two.point_to_point() > two.send_interval() + 1);
        let p = extract_params(&two, 300, SimConfig::default());
        prop_assert!(
            p.worst_relative_error(&two) < 0.05,
            "extraction failed on {}: {:?}", two, p
        );
    }

    /// LogGP bulk sends always match the closed-form long-message time.
    #[test]
    fn bulk_send_matches_loggp_formula(
        m in machine(),
        big_g in 1u64..8,
        words in 1u64..200,
    ) {
        use logp::core::extensions::LogGP;
        let two = m.with_p(2);
        let cfg = SimConfig::default().with_big_g(big_g);
        let mut sim = Sim::new(two, cfg);
        sim.set_all(move |me| {
            Box::new(logp::sim::process::StartFn(move |ctx: &mut Ctx<'_>| {
                if me == 0 {
                    ctx.send_bulk(1, 0, Data::Empty, words);
                }
            }))
        });
        let r = sim.run().expect("terminates");
        prop_assert_eq!(
            r.stats.completion,
            LogGP::new(two, big_g).long_message_time(words)
        );
    }

    /// The Jacobi stencil matches its sequential oracle for random fields,
    /// machine points and iteration counts.
    #[test]
    fn stencil_matches_oracle(
        m in machine(),
        iters in 0u64..6,
        block in 1usize..12,
        seed in 0u64..50,
    ) {
        use logp::algos::stencil::{jacobi_sequential, run_jacobi};
        prop_assume!(m.p >= 2);
        let n = m.p as usize * block;
        let field: Vec<f64> = (0..n).map(|i| ((i as u64 ^ seed) % 17) as f64).collect();
        let cfg = SimConfig::default().with_jitter(m.l / 2).with_seed(seed);
        let run = run_jacobi(&m, &field, iters, cfg);
        let expect = jacobi_sequential(&field, iters);
        for (a, b) in run.field.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Radix sort equals the sorted input for random keys under jitter.
    #[test]
    fn radix_sorts_random_keys(
        keys in proptest::collection::vec(0u64..(1 << 12), 16..120),
        seed in 0u64..30,
    ) {
        use logp::algos::radix::run_radix_sort;
        let m = LogP::new(8, 2, 3, 4).unwrap();
        let mut padded = keys;
        while padded.len() % 4 != 0 {
            padded.push(0);
        }
        let cfg = SimConfig::default().with_jitter(5).with_seed(seed);
        let run = run_radix_sort(&m, &padded, 6, 12, cfg);
        let mut expect = padded.clone();
        expect.sort_unstable();
        prop_assert_eq!(run.output, expect);
    }

    /// SUMMA multiplies random matrices correctly on 2x2 and 3x3 grids.
    #[test]
    fn summa_multiplies_random_matrices(
        seed in 0u64..200,
        grid in 2u32..4,
        tiles in 1usize..4,
    ) {
        use logp::algos::lu::Matrix;
        use logp::algos::matmul::{matmul_sequential, run_summa};
        let n = grid as usize * tiles;
        let m = LogP::new(9, 2, 3, grid * grid).unwrap();
        let a = Matrix::test_matrix(n, seed);
        let b = Matrix::test_matrix(n, seed ^ 0xFFFF);
        let run = run_summa(&m, &a, &b, SimConfig::default());
        let expect = matmul_sequential(&a, &b);
        for (x, y) in run.c.data.iter().zip(&expect.data) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// k-item broadcast strategies all deliver the complete vector under
    /// jitter, for random machines and payload sizes.
    #[test]
    fn kbroadcast_strategies_deliver(
        m in machine(),
        k in 1usize..24,
        seed in 0u64..30,
    ) {
        use logp::algos::kbroadcast::{
            run_kbcast_binomial, run_kbcast_optimal_tree, run_kbcast_scatter_gather,
        };
        let items: Vec<u64> = (0..k as u64).map(|i| i * 13 + 5).collect();
        let cfg = SimConfig::default().with_jitter(m.l / 2).with_seed(seed);
        // Delivery correctness is asserted inside each runner.
        let a = run_kbcast_optimal_tree(&m, &items, cfg.clone());
        let b = run_kbcast_binomial(&m, &items, cfg.clone());
        let c = run_kbcast_scatter_gather(&m, &items, cfg);
        prop_assert!(a.completion > 0 && b.completion > 0 && c.completion > 0);
        // Tree strategies deliver exactly (P-1)·k messages.
        prop_assert_eq!(a.messages, (m.p as u64 - 1) * k as u64);
        prop_assert_eq!(b.messages, (m.p as u64 - 1) * k as u64);
    }

    /// The scatter stream bound holds exactly on arbitrary machines.
    #[test]
    fn scatter_matches_stream_bound(m in machine()) {
        use logp::algos::gather::{run_scatter, scatter_time};
        let values: Vec<u64> = (0..m.p as u64).collect();
        let run = run_scatter(&m, &values, SimConfig::default());
        prop_assert_eq!(run.completion, scatter_time(&m));
    }

    /// CC labels match union-find on random graphs for both variants.
    #[test]
    fn cc_matches_union_find(
        n in 8u64..48,
        edge_factor in 1u64..4,
        seed in 0u64..50,
        combining in proptest::bool::ANY,
    ) {
        use logp::algos::cc::{cc_sequential, run_cc, Graph};
        let g = Graph::random(n, n * edge_factor, seed | 1);
        let m = LogP::new(10, 2, 4, 8).unwrap();
        let run = run_cc(&m, &g, combining, SimConfig::default());
        prop_assert_eq!(run.labels, cc_sequential(&g));
    }
}

/// Trace/stats conservation: for a traced run, the cycles in each
/// processor's activity spans must sum exactly to the corresponding
/// `ProcStats` accumulator — the trace and the counters are two views of
/// the same execution and may never drift apart.
fn assert_span_stats_conservation(r: &logp::sim::SimResult) -> Result<(), TestCaseError> {
    use logp::sim::Activity;
    let p = r.stats.procs.len();
    let mut sums = vec![[0u64; 5]; p];
    for sp in &r.trace.spans {
        let slot = match sp.activity {
            Activity::SendOverhead => 0,
            Activity::RecvOverhead => 1,
            Activity::Compute => 2,
            Activity::Stall => 3,
            Activity::Barrier => 4,
        };
        sums[sp.proc as usize][slot] += sp.end - sp.start;
    }
    for (q, st) in r.stats.procs.iter().enumerate() {
        prop_assert_eq!(sums[q][0], st.send_overhead, "P{} send overhead", q);
        prop_assert_eq!(sums[q][1], st.recv_overhead, "P{} recv overhead", q);
        prop_assert_eq!(sums[q][2], st.compute, "P{} compute", q);
        prop_assert_eq!(sums[q][3], st.stall, "P{} stall", q);
        prop_assert_eq!(sums[q][4], st.barrier_wait, "P{} barrier wait", q);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Span/stats conservation holds for broadcast on arbitrary machines.
    #[test]
    fn trace_conserves_stats_broadcast(m in machine()) {
        let run = run_optimal_broadcast(&m, SimConfig::default().with_trace(true));
        assert_span_stats_conservation(&run.result)?;
    }

    /// Span/stats conservation holds for capacity-stalled all-to-all
    /// traffic (stall spans included).
    #[test]
    fn trace_conserves_stats_all_to_all(m in machine(), msgs_per in 1u64..6) {
        let mut sim = Sim::new(m, SimConfig::default().with_trace(true));
        sim.set_all(move |me| {
            Box::new(logp::sim::process::StartFn(move |ctx: &mut Ctx<'_>| {
                ctx.compute(3, 0);
                for i in 0..msgs_per {
                    let dst = (me + 1 + (i as u32 % (ctx.procs() - 1))) % ctx.procs();
                    ctx.send(dst, 0, Data::U64(i));
                }
            }))
        });
        let r = sim.run().expect("terminates");
        assert_span_stats_conservation(&r)?;
    }

    /// Span/stats conservation holds for the optimal summation (compute
    /// spans included), and full observation does not disturb it.
    #[test]
    fn trace_conserves_stats_summation(m in machine(), t in 1u64..40) {
        let run = run_optimal_sum(&m, t, SimConfig::observed().with_metrics_grid(8));
        assert_span_stats_conservation(&run.result)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The 2D stencil matches its sequential oracle on random fields and
    /// grids, under jitter.
    #[test]
    fn stencil2d_matches_oracle(
        grid in 2u32..4,
        tiles in 2usize..5,
        iters in 0u64..4,
        seed in 0u64..40,
    ) {
        use logp::algos::stencil2d::{jacobi2d_sequential, run_jacobi2d};
        let n = grid as usize * tiles;
        let m = LogP::new(9, 2, 3, grid * grid).unwrap();
        let field: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| (((r * n + c) as u64 ^ seed) % 23) as f64)
                    .collect()
            })
            .collect();
        let cfg = SimConfig::default().with_jitter(4).with_seed(seed);
        let run = run_jacobi2d(&m, &field, iters, cfg);
        let expect = jacobi2d_sequential(&field, iters);
        for (a, b) in run.field.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Widening every link of the packet machine can only push the
    /// saturation knee of the measured `g(ρ)` curve to higher offered
    /// load: more bandwidth, later breakdown. (`None` = the curve never
    /// left the flat region, treated as a knee beyond every probed load.)
    #[test]
    fn saturation_knee_moves_up_with_link_bandwidth(
        seed in 0u64..1_000,
        widen in 2u32..=4,
    ) {
        use logp::calib::{g_knee, g_of_load, CalibConfig, PacketMachine};
        use logp::net::{Network, Topology};

        let loads = [0.0, 0.2, 0.4, 0.6, 0.8];
        let cfg = CalibConfig::quick().with_endpoints(0, 15);
        let knee_at = |factor: u32| {
            let mut m = PacketMachine::new(Network::build(Topology::Mesh2D, 16), 2, 4);
            m.seed = seed;
            m.net.scale_link_capacity(factor);
            let curve = g_of_load(&m, &loads, &cfg);
            g_knee(&curve, 1.3).unwrap_or(1.0)
        };
        prop_assert!(knee_at(widen) >= knee_at(1));
    }
}
