//! Determinism and equivalence properties of the sharded lane engine
//! (`logp_sim::engine::shard`).
//!
//! Two distinct claims are pinned here:
//!
//! * **Lane-count invariance** — every lane count `>= 2` produces the
//!   same `SimResult` *bit for bit*, in every configuration: jitter,
//!   drift, observability, fault plans, crashes.
//! * **Classic equivalence** — against the classic single-heap engine
//!   (`shards <= 1`), the sharded engine agrees on the workload-level
//!   outcome (completion time, message counts, per-processor stats)
//!   whenever both engines sample the same randomness, i.e. at
//!   `latency_jitter == 0` and `drift_ppk == 0` (the classic engine
//!   draws from a sequential generator in global event order; the
//!   sharded engine draws counter-mode). Event counts are engine
//!   vocabulary — the classic engine pays one `Release` event per
//!   message that lanes replace with source rings — so `events` and the
//!   dst-side high-water mark are excluded from the comparison.

use logp::algos::allreduce::{run_allreduce_doubling, run_allreduce_reduce_bcast};
use logp::algos::broadcast::run_optimal_broadcast;
use logp::prelude::*;
use logp::sim::{replay_jsonl, FaultPlan, ObsSampling, SimResult, SinkSpec};

fn machines() -> Vec<LogP> {
    vec![
        LogP::new(6, 2, 4, 8).unwrap(),
        LogP::new(14, 3, 5, 27).unwrap(),
        LogP::new(25, 1, 2, 64).unwrap(),
        // o = 0 exercises the minimum window width W = L - jitter.
        LogP::new(4, 0, 1, 16).unwrap(),
    ]
}

/// The workload-level projection two engines must agree on.
fn projection(r: &SimResult) -> (Cycles, u64, u64, Vec<(u64, u64)>, u64) {
    (
        r.stats.completion,
        r.stats.total_msgs,
        r.stats.max_inflight_per_src,
        r.stats
            .procs
            .iter()
            .map(|p| (p.msgs_sent, p.msgs_recvd))
            .collect(),
        r.stats.msgs_dropped,
    )
}

/// Fire-and-forget traffic with enough structure to exercise jitter,
/// drift, timers, and fault decisions: every processor scatters a few
/// rounds of messages at pseudo-random neighbors, paced by timers and
/// interleaved with compute. Termination never depends on receptions,
/// so it survives arbitrary drop plans.
struct Scatter {
    rounds: u64,
}

impl Process for Scatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.compute(u64::from(ctx.me() % 5) * 3, 0);
        ctx.timer(1 + u64::from(ctx.me() % 3), 0);
    }
    fn on_timer(&mut self, round: u64, ctx: &mut Ctx<'_>) {
        let p = u64::from(ctx.procs());
        let me = u64::from(ctx.me());
        for k in 0..2u64 {
            let dst = (me + 1 + (me * 7 + round * 13 + k * 5) % (p - 1)) % p;
            ctx.send(dst as u32, round as u32, Data::U64(me * 100 + round));
        }
        if round + 1 < self.rounds {
            ctx.timer(2 + (me + round) % 4, round + 1);
        }
    }
}

#[test]
fn broadcast_bit_identical_across_lane_counts() {
    for m in machines() {
        for config in [
            SimConfig::default(),
            SimConfig::observed(),
            SimConfig::observed().with_jitter(3).with_drift(8),
        ] {
            let runs: Vec<SimResult> = [2u32, 3, 8]
                .iter()
                .map(|&n| run_optimal_broadcast(&m, config.clone().with_shards(n)).result)
                .collect();
            assert_eq!(runs[0], runs[1], "2 vs 3 lanes diverged on {m:?}");
            assert_eq!(runs[0], runs[2], "2 vs 8 lanes diverged on {m:?}");
        }
    }
}

#[test]
fn allreduce_bit_identical_across_lane_counts() {
    for m in machines() {
        let values: Vec<f64> = (0..m.p).map(|q| q as f64).collect();
        let config = SimConfig::observed().with_jitter(2);
        let run = |n: u32| {
            if m.p.is_power_of_two() {
                run_allreduce_doubling(&m, &values, config.clone().with_shards(n))
            } else {
                run_allreduce_reduce_bcast(&m, &values, config.clone().with_shards(n))
            }
        };
        let a = run(2);
        let b = run(8);
        assert_eq!(a.value, b.value);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.messages, b.messages);
    }
}

#[test]
fn faulted_run_bit_identical_across_lane_counts() {
    for m in machines() {
        let plan = FaultPlan::new(0xFEED)
            .with_drop_ppm(50_000)
            .with_dup_ppm(20_000)
            .with_delay(30_000, 7)
            .with_crash(m.p - 1, 40);
        let config = SimConfig::observed()
            .with_jitter(3)
            .with_faults(plan.clone());
        let run = |n: u32| -> SimResult {
            let mut sim = Sim::new(m, config.clone().with_shards(n));
            sim.set_all(|_| Box::new(Scatter { rounds: 4 }));
            sim.run().expect("scatter terminates")
        };
        let r2 = run(2);
        let r3 = run(3);
        let r8 = run(8);
        assert_eq!(r2, r3, "2 vs 3 lanes diverged under faults on {m:?}");
        assert_eq!(r2, r8, "2 vs 8 lanes diverged under faults on {m:?}");
    }
}

#[test]
fn classic_and_sharded_agree_at_zero_jitter() {
    for m in machines() {
        let classic = run_optimal_broadcast(&m, SimConfig::default());
        let lanes = run_optimal_broadcast(&m, SimConfig::default().with_shards(4));
        assert_eq!(
            projection(&classic.result),
            projection(&lanes.result),
            "classic vs lanes diverged on {m:?}"
        );
        // Same-cycle deliveries may be serviced in a different (equally
        // legal) order by the two engines; the arrival *set* must match.
        let sorted = |mut v: Vec<(ProcId, Cycles)>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(classic.arrivals), sorted(lanes.arrivals));

        let values: Vec<f64> = (0..m.p).map(|q| (q % 17) as f64).collect();
        let c = run_allreduce_reduce_bcast(&m, &values, SimConfig::default());
        let s = run_allreduce_reduce_bcast(&m, &values, SimConfig::default().with_shards(8));
        assert_eq!(c.value, s.value);
        assert_eq!(c.completion, s.completion);
        assert_eq!(c.messages, s.messages);
    }
}

#[test]
fn classic_and_sharded_agree_on_barrier_programs() {
    struct BarrierHop;
    impl Process for BarrierHop {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.me();
            let p = ctx.procs();
            ctx.compute(u64::from(me % 5) * 3, 0);
            ctx.barrier();
            ctx.send((me + 1) % p, 1, Data::U64(u64::from(me)));
            ctx.barrier();
        }
    }
    let m = LogP::new(9, 2, 3, 24).unwrap();
    let run = |config: SimConfig| {
        let mut sim = Sim::new(m, config);
        sim.set_all(|_| Box::new(BarrierHop));
        sim.run().expect("barrier program terminates")
    };
    let classic = run(SimConfig::default());
    let sharded = run(SimConfig::default().with_shards(3));
    assert_eq!(projection(&classic), projection(&sharded));
    let s2 = run(SimConfig::default().with_shards(2));
    let s8 = run(SimConfig::default().with_shards(8));
    assert_eq!(s2, s8);
}

/// A message's lane-invariant identity: every lifecycle timestamp, but
/// neither the record id (dense on the classic engine, structured on the
/// sharded one) nor the cause's id.
type MsgKey = (
    ProcId,
    ProcId,
    u32,
    u64,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
);

fn sampled_set(text: &str) -> Vec<MsgKey> {
    let log = replay_jsonl(text).expect("replayable stream");
    let mut keys: Vec<MsgKey> = log
        .msgs
        .iter()
        .map(|m| {
            (
                m.src,
                m.dst,
                m.tag,
                m.words,
                m.submit,
                m.send_gate,
                m.inject,
                m.sent,
                m.arrive,
                m.recv_gate,
                m.recv_start,
                m.deliver,
            )
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// Every sampling policy is a pure function of record identity, so the
/// sampled message *set* streamed to a sink is identical across the
/// classic engine and every sharded lane count {1, 2, 4, 8}.
#[test]
fn sampling_policies_invariant_across_lane_counts() {
    let dir = std::env::temp_dir().join("logp_sampling_lanes_test");
    std::fs::create_dir_all(&dir).unwrap();
    let m = LogP::new(14, 3, 5, 27).unwrap();
    let policies = [
        ObsSampling::All,
        ObsSampling::Stride(3),
        ObsSampling::ProcSet(vec![0, 5, 13, 26]),
        ObsSampling::HeadTail(2),
        ObsSampling::Reservoir { k: 9, seed: 0x5EED },
    ];
    for (pi, policy) in policies.into_iter().enumerate() {
        let run = |lanes: u32| -> Vec<MsgKey> {
            let path = dir.join(format!("p{pi}_l{lanes}.jsonl"));
            let config = SimConfig::default()
                .with_shards(lanes)
                .with_sink(SinkSpec::Jsonl(path.clone()))
                .with_sampling(policy.clone());
            let res = run_optimal_broadcast(&m, config).result;
            assert!(res.obs.is_empty(), "streaming retains nothing");
            sampled_set(&std::fs::read_to_string(&path).unwrap())
        };
        let baseline = run(1); // classic engine
        assert!(
            !baseline.is_empty(),
            "policy {policy:?} must sample something"
        );
        for lanes in [2u32, 4, 8] {
            assert_eq!(
                baseline,
                run(lanes),
                "policy {policy:?} diverged at {lanes} lanes"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Arena pre-sizing: construction (classic) and lane setup (sharded)
/// must size every event heap and message slab so the standard
/// collectives never grow them mid-run. Debug builds count growth
/// events; release builds return 0 and the test degenerates to a
/// smoke run.
#[test]
fn collectives_never_regrow_arenas() {
    let m = LogP::new(6, 2, 4, 256).unwrap();
    let tree = logp::core::broadcast::optimal_broadcast_tree(&m);
    let children = tree.children();
    for shards in [0u32, 2, 8] {
        let mut sim = Sim::new(m, SimConfig::default().with_shards(shards));
        sim.set_all(|p| {
            Box::new(TreeFanOut {
                children: children[p as usize].clone(),
                root: p == 0,
            })
        });
        let (result, reallocs) = sim.run_counting_reallocs().expect("broadcast terminates");
        assert_eq!(result.stats.total_msgs, u64::from(m.p) - 1);
        assert_eq!(reallocs, 0, "arena regrew at shards={shards}");
    }
}

struct TreeFanOut {
    children: Vec<ProcId>,
    root: bool,
}

impl Process for TreeFanOut {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.root {
            for &c in &self.children {
                ctx.send(c, 0, Data::U64(1));
            }
        }
    }
    fn on_message(&mut self, msg: &Message, ctx: &mut Ctx<'_>) {
        let v = msg.data.as_u64();
        for &c in &self.children {
            ctx.send(c, 0, Data::U64(v));
        }
    }
}

/// The million-processor target: broadcast and all-reduce at `P = 1M`
/// complete and agree across the classic engine and every lane count.
/// Ignored by default — it is minutes of work in a debug build; the
/// `shard_scale` bench runs the same configuration in release as part
/// of its `--check` mode.
#[test]
#[ignore = "release-scale run; covered by `shard_scale --check`"]
fn million_proc_collectives_agree() {
    let m = LogP::new(60, 4, 8, 1_000_000).unwrap();
    let classic = run_optimal_broadcast(&m, SimConfig::default());
    for shards in [2u32, 8] {
        let lanes = run_optimal_broadcast(&m, SimConfig::default().with_shards(shards));
        assert_eq!(projection(&classic.result), projection(&lanes.result));
    }
}
