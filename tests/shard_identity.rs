//! Determinism and equivalence properties of the sharded lane engine
//! (`logp_sim::engine::shard`).
//!
//! Two distinct claims are pinned here:
//!
//! * **Lane-count invariance** — every lane count `>= 2` produces the
//!   same `SimResult` *bit for bit*, in every configuration: jitter,
//!   drift, observability, fault plans, crashes.
//! * **Classic equivalence** — against the classic single-heap engine
//!   (`shards <= 1`), the sharded engine agrees on the workload-level
//!   outcome (completion time, message counts, per-processor stats)
//!   whenever both engines sample the same randomness, i.e. at
//!   `latency_jitter == 0` and `drift_ppk == 0` (the classic engine
//!   draws from a sequential generator in global event order; the
//!   sharded engine draws counter-mode). Event counts are engine
//!   vocabulary — the classic engine pays one `Release` event per
//!   message that lanes replace with source rings — so `events` and the
//!   dst-side high-water mark are excluded from the comparison.

use logp::algos::allreduce::{run_allreduce_doubling, run_allreduce_reduce_bcast};
use logp::algos::broadcast::run_optimal_broadcast;
use logp::prelude::*;
use logp::sim::{replay_jsonl, FaultPlan, ObsSampling, SimResult, SinkSpec};

fn machines() -> Vec<LogP> {
    vec![
        LogP::new(6, 2, 4, 8).unwrap(),
        LogP::new(14, 3, 5, 27).unwrap(),
        LogP::new(25, 1, 2, 64).unwrap(),
        // o = 0 exercises the minimum window width W = L - jitter.
        LogP::new(4, 0, 1, 16).unwrap(),
    ]
}

/// The workload-level projection two engines must agree on.
fn projection(r: &SimResult) -> (Cycles, u64, u64, Vec<(u64, u64)>, u64) {
    (
        r.stats.completion,
        r.stats.total_msgs,
        r.stats.max_inflight_per_src,
        r.stats
            .procs
            .iter()
            .map(|p| (p.msgs_sent, p.msgs_recvd))
            .collect(),
        r.stats.msgs_dropped,
    )
}

/// Fire-and-forget traffic with enough structure to exercise jitter,
/// drift, timers, and fault decisions: every processor scatters a few
/// rounds of messages at pseudo-random neighbors, paced by timers and
/// interleaved with compute. Termination never depends on receptions,
/// so it survives arbitrary drop plans.
struct Scatter {
    rounds: u64,
}

impl Process for Scatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.compute(u64::from(ctx.me() % 5) * 3, 0);
        ctx.timer(1 + u64::from(ctx.me() % 3), 0);
    }
    fn on_timer(&mut self, round: u64, ctx: &mut Ctx<'_>) {
        let p = u64::from(ctx.procs());
        let me = u64::from(ctx.me());
        for k in 0..2u64 {
            let dst = (me + 1 + (me * 7 + round * 13 + k * 5) % (p - 1)) % p;
            ctx.send(dst as u32, round as u32, Data::U64(me * 100 + round));
        }
        if round + 1 < self.rounds {
            ctx.timer(2 + (me + round) % 4, round + 1);
        }
    }
}

#[test]
fn broadcast_bit_identical_across_lane_counts() {
    for m in machines() {
        for config in [
            SimConfig::default(),
            SimConfig::observed(),
            SimConfig::observed().with_jitter(3).with_drift(8),
        ] {
            let runs: Vec<SimResult> = [2u32, 3, 8]
                .iter()
                .map(|&n| run_optimal_broadcast(&m, config.clone().with_shards(n)).result)
                .collect();
            assert_eq!(runs[0], runs[1], "2 vs 3 lanes diverged on {m:?}");
            assert_eq!(runs[0], runs[2], "2 vs 8 lanes diverged on {m:?}");
        }
    }
}

#[test]
fn allreduce_bit_identical_across_lane_counts() {
    for m in machines() {
        let values: Vec<f64> = (0..m.p).map(|q| q as f64).collect();
        let config = SimConfig::observed().with_jitter(2);
        let run = |n: u32| {
            if m.p.is_power_of_two() {
                run_allreduce_doubling(&m, &values, config.clone().with_shards(n))
            } else {
                run_allreduce_reduce_bcast(&m, &values, config.clone().with_shards(n))
            }
        };
        let a = run(2);
        let b = run(8);
        assert_eq!(a.value, b.value);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.messages, b.messages);
    }
}

#[test]
fn faulted_run_bit_identical_across_lane_counts() {
    for m in machines() {
        let plan = FaultPlan::new(0xFEED)
            .with_drop_ppm(50_000)
            .with_dup_ppm(20_000)
            .with_delay(30_000, 7)
            .with_crash(m.p - 1, 40);
        let config = SimConfig::observed()
            .with_jitter(3)
            .with_faults(plan.clone());
        let run = |n: u32| -> SimResult {
            let mut sim = Sim::new(m, config.clone().with_shards(n));
            sim.set_all(|_| Box::new(Scatter { rounds: 4 }));
            sim.run().expect("scatter terminates")
        };
        let r2 = run(2);
        let r3 = run(3);
        let r8 = run(8);
        assert_eq!(r2, r3, "2 vs 3 lanes diverged under faults on {m:?}");
        assert_eq!(r2, r8, "2 vs 8 lanes diverged under faults on {m:?}");
    }
}

#[test]
fn classic_and_sharded_agree_at_zero_jitter() {
    for m in machines() {
        let classic = run_optimal_broadcast(&m, SimConfig::default());
        let lanes = run_optimal_broadcast(&m, SimConfig::default().with_shards(4));
        assert_eq!(
            projection(&classic.result),
            projection(&lanes.result),
            "classic vs lanes diverged on {m:?}"
        );
        // Same-cycle deliveries may be serviced in a different (equally
        // legal) order by the two engines; the arrival *set* must match.
        let sorted = |mut v: Vec<(ProcId, Cycles)>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(classic.arrivals), sorted(lanes.arrivals));

        let values: Vec<f64> = (0..m.p).map(|q| (q % 17) as f64).collect();
        let c = run_allreduce_reduce_bcast(&m, &values, SimConfig::default());
        let s = run_allreduce_reduce_bcast(&m, &values, SimConfig::default().with_shards(8));
        assert_eq!(c.value, s.value);
        assert_eq!(c.completion, s.completion);
        assert_eq!(c.messages, s.messages);
    }
}

#[test]
fn classic_and_sharded_agree_on_barrier_programs() {
    struct BarrierHop;
    impl Process for BarrierHop {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.me();
            let p = ctx.procs();
            ctx.compute(u64::from(me % 5) * 3, 0);
            ctx.barrier();
            ctx.send((me + 1) % p, 1, Data::U64(u64::from(me)));
            ctx.barrier();
        }
    }
    let m = LogP::new(9, 2, 3, 24).unwrap();
    let run = |config: SimConfig| {
        let mut sim = Sim::new(m, config);
        sim.set_all(|_| Box::new(BarrierHop));
        sim.run().expect("barrier program terminates")
    };
    let classic = run(SimConfig::default());
    let sharded = run(SimConfig::default().with_shards(3));
    assert_eq!(projection(&classic), projection(&sharded));
    let s2 = run(SimConfig::default().with_shards(2));
    let s8 = run(SimConfig::default().with_shards(8));
    assert_eq!(s2, s8);
}

/// A message's lane-invariant identity: every lifecycle timestamp, but
/// neither the record id (dense on the classic engine, structured on the
/// sharded one) nor the cause's id.
type MsgKey = (
    ProcId,
    ProcId,
    u32,
    u64,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
    Cycles,
);

fn sampled_set(text: &str) -> Vec<MsgKey> {
    let log = replay_jsonl(text).expect("replayable stream");
    let mut keys: Vec<MsgKey> = log
        .msgs
        .iter()
        .map(|m| {
            (
                m.src,
                m.dst,
                m.tag,
                m.words,
                m.submit,
                m.send_gate,
                m.inject,
                m.sent,
                m.arrive,
                m.recv_gate,
                m.recv_start,
                m.deliver,
            )
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// Every sampling policy is a pure function of record identity, so the
/// sampled message *set* streamed to a sink is identical across the
/// classic engine and every sharded lane count {1, 2, 4, 8}.
#[test]
fn sampling_policies_invariant_across_lane_counts() {
    let dir = std::env::temp_dir().join("logp_sampling_lanes_test");
    std::fs::create_dir_all(&dir).unwrap();
    let m = LogP::new(14, 3, 5, 27).unwrap();
    let policies = [
        ObsSampling::All,
        ObsSampling::Stride(3),
        ObsSampling::ProcSet(vec![0, 5, 13, 26]),
        ObsSampling::HeadTail(2),
        ObsSampling::Reservoir { k: 9, seed: 0x5EED },
    ];
    for (pi, policy) in policies.into_iter().enumerate() {
        let run = |lanes: u32| -> Vec<MsgKey> {
            let path = dir.join(format!("p{pi}_l{lanes}.jsonl"));
            let config = SimConfig::default()
                .with_shards(lanes)
                .with_sink(SinkSpec::Jsonl(path.clone()))
                .with_sampling(policy.clone());
            let res = run_optimal_broadcast(&m, config).result;
            assert!(res.obs.is_empty(), "streaming retains nothing");
            sampled_set(&std::fs::read_to_string(&path).unwrap())
        };
        let baseline = run(1); // classic engine
        assert!(
            !baseline.is_empty(),
            "policy {policy:?} must sample something"
        );
        for lanes in [2u32, 4, 8] {
            assert_eq!(
                baseline,
                run(lanes),
                "policy {policy:?} diverged at {lanes} lanes"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Arena pre-sizing: construction (classic) and lane setup (sharded)
/// must size every event heap and message slab so the standard
/// collectives never grow them mid-run. Debug builds count growth
/// events; release builds return 0 and the test degenerates to a
/// smoke run.
#[test]
fn collectives_never_regrow_arenas() {
    let m = LogP::new(6, 2, 4, 256).unwrap();
    let tree = logp::core::broadcast::optimal_broadcast_tree(&m);
    let children = tree.children();
    for shards in [0u32, 2, 8] {
        let mut sim = Sim::new(m, SimConfig::default().with_shards(shards));
        sim.set_all(|p| {
            Box::new(TreeFanOut {
                children: children[p as usize].clone(),
                root: p == 0,
            })
        });
        let (result, reallocs) = sim.run_counting_reallocs().expect("broadcast terminates");
        assert_eq!(result.stats.total_msgs, u64::from(m.p) - 1);
        assert_eq!(reallocs, 0, "arena regrew at shards={shards}");
    }
}

struct TreeFanOut {
    children: Vec<ProcId>,
    root: bool,
}

impl Process for TreeFanOut {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.root {
            for &c in &self.children {
                ctx.send(c, 0, Data::U64(1));
            }
        }
    }
    fn on_message(&mut self, msg: &Message, ctx: &mut Ctx<'_>) {
        let v = msg.data.as_u64();
        for &c in &self.children {
            ctx.send(c, 0, Data::U64(v));
        }
    }
}

// ---------------------------------------------------------------------------
// Worker-count invariance: the parallel window executor
// (`logp_sim::engine::plane`) must reproduce the serial sharded engine's
// `SimResult` — and every exported artifact — bit for bit at every worker
// count, in every configuration.
// ---------------------------------------------------------------------------

#[test]
fn broadcast_bit_identical_across_worker_counts() {
    for m in machines() {
        for config in [
            SimConfig::default(),
            SimConfig::observed(),
            SimConfig::observed().with_jitter(3).with_drift(8),
        ] {
            let run = |workers: u32| -> SimResult {
                run_optimal_broadcast(&m, config.clone().with_shards(8).with_workers(workers))
                    .result
            };
            let serial = run(0);
            for workers in [1u32, 2, 4, 8] {
                assert_eq!(
                    serial,
                    run(workers),
                    "serial vs {workers} workers diverged on {m:?}"
                );
            }
        }
    }
}

#[test]
fn faulted_run_bit_identical_across_worker_counts() {
    for m in machines() {
        let plan = FaultPlan::new(0xFEED)
            .with_drop_ppm(50_000)
            .with_dup_ppm(20_000)
            .with_delay(30_000, 7)
            .with_crash(m.p - 1, 40)
            .with_crash(0, 0);
        let config = SimConfig::observed()
            .with_jitter(3)
            .with_shards(4)
            .with_faults(plan.clone());
        let run = |workers: u32| -> SimResult {
            let mut sim = Sim::new(m, config.clone().with_workers(workers));
            sim.set_all(|_| Box::new(Scatter { rounds: 4 }));
            sim.run().expect("scatter terminates")
        };
        let serial = run(0);
        for workers in [1u32, 2, 4, 8] {
            assert_eq!(
                serial,
                run(workers),
                "serial vs {workers} workers diverged under faults on {m:?}"
            );
        }
    }
}

#[test]
fn barrier_programs_bit_identical_across_worker_counts() {
    struct BarrierHop;
    impl Process for BarrierHop {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.me();
            let p = ctx.procs();
            ctx.compute(u64::from(me % 5) * 3, 0);
            ctx.barrier();
            ctx.send((me + 1) % p, 1, Data::U64(u64::from(me)));
            ctx.barrier();
        }
    }
    for m in machines() {
        for config in [
            SimConfig::observed().with_shards(3),
            SimConfig::observed().with_jitter(2).with_shards(8),
        ] {
            let run = |workers: u32| -> SimResult {
                let mut sim = Sim::new(m, config.clone().with_workers(workers));
                sim.set_all(|_| Box::new(BarrierHop));
                sim.run().expect("barrier program terminates")
            };
            let serial = run(0);
            for workers in [1u32, 2, 4, 8] {
                assert_eq!(
                    serial,
                    run(workers),
                    "serial vs {workers} workers diverged on barriers on {m:?}"
                );
            }
        }
    }
}

/// Prologue sends: `on_start` runs at t = 0, *before* the first
/// window's start, so its cross-lane arrivals are not covered by the
/// `arrival >= t0 + W` window bound and can land inside the first
/// window. The parallel executor must deliver the prologue outboxes
/// before the first window pumps (regression: an all-to-all blast from
/// `on_start` let a destination's capacity wake overtake an arrival the
/// serial engine services first).
#[test]
fn prologue_blast_bit_identical_across_worker_counts() {
    struct Blast;
    impl Process for Blast {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.me();
            let p = ctx.procs();
            for k in 1..p {
                ctx.send((me + k) % p, 0, Data::Empty);
            }
        }
    }
    for m in machines() {
        for shards in [2u32, 4, 8] {
            let run = |workers: u32| -> SimResult {
                let mut sim = Sim::new(
                    m,
                    SimConfig::observed()
                        .with_shards(shards)
                        .with_workers(workers),
                );
                sim.set_all(|_| Box::new(Blast));
                sim.run().expect("blast terminates")
            };
            let serial = run(0);
            for workers in [1u32, 2, 4] {
                assert_eq!(
                    serial,
                    run(workers),
                    "prologue blast diverged at {shards} lanes, {workers} workers on {m:?}"
                );
            }
        }
    }
}

/// Streamed artifacts must be *byte*-identical across worker counts:
/// lane emissions stage per lane and flush through the parent's sampler
/// and sink in lane order at every window barrier, which is exactly the
/// serial emission order.
#[test]
fn streamed_artifacts_byte_identical_across_worker_counts() {
    let dir = std::env::temp_dir().join("logp_worker_stream_test");
    std::fs::create_dir_all(&dir).unwrap();
    let m = LogP::new(14, 3, 5, 27).unwrap();
    let policies = [
        ObsSampling::All,
        ObsSampling::Stride(3),
        ObsSampling::Reservoir { k: 9, seed: 0x5EED },
    ];
    for (pi, policy) in policies.into_iter().enumerate() {
        let run = |workers: u32| -> (String, String) {
            let jsonl = dir.join(format!("p{pi}_w{workers}.jsonl"));
            let perfetto = dir.join(format!("p{pi}_w{workers}.pftrace.json"));
            for (sink, path) in [
                (SinkSpec::Jsonl(jsonl.clone()), &jsonl),
                (SinkSpec::Perfetto(perfetto.clone()), &perfetto),
            ] {
                let config = SimConfig::default()
                    .with_jitter(2)
                    .with_shards(8)
                    .with_workers(workers)
                    .with_sink(sink)
                    .with_sampling(policy.clone());
                let res = run_optimal_broadcast(&m, config).result;
                assert!(res.obs.is_empty(), "streaming retains nothing");
                assert!(path.exists());
            }
            (
                std::fs::read_to_string(&jsonl).unwrap(),
                std::fs::read_to_string(&perfetto).unwrap(),
            )
        };
        let serial = run(0);
        for workers in [1u32, 2, 4, 8] {
            assert_eq!(
                serial,
                run(workers),
                "policy {policy:?} artifacts diverged at {workers} workers"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Online aggregation under workers: the per-lane aggregates absorbed
/// into the parent must equal the serial sharded aggregate exactly
/// (same critical path, same per-processor components, same histograms),
/// under jitter and faults.
#[test]
fn aggregation_invariant_across_worker_counts() {
    let m = LogP::new(14, 3, 5, 27).unwrap();
    let plan = FaultPlan::new(0xFEED)
        .with_drop_ppm(40_000)
        .with_delay(25_000, 5);
    let run = |workers: u32| {
        let config = SimConfig::default()
            .with_jitter(2)
            .with_shards(4)
            .with_workers(workers)
            .with_faults(plan.clone())
            .with_aggregate(true);
        let mut sim = Sim::new(m, config);
        sim.set_all(|_| Box::new(Scatter { rounds: 4 }));
        sim.run().expect("scatter terminates")
    };
    let serial = run(0);
    assert!(
        serial.aggregate.is_some(),
        "aggregation must produce a report"
    );
    for workers in [1u32, 2, 4, 8] {
        assert_eq!(
            serial,
            run(workers),
            "aggregate diverged at {workers} workers"
        );
    }
}

/// Worker counts above the lane count clamp harmlessly, and the vitals
/// report the clamped worker count plus per-lane wall times.
#[test]
fn worker_vitals_report_parallel_shape() {
    let m = LogP::new(6, 2, 4, 8).unwrap();
    let r = run_optimal_broadcast(&m, SimConfig::default().with_shards(4).with_workers(16));
    let v = &r.result.vitals;
    assert_eq!(v.engine, "sharded");
    assert_eq!(v.workers, 4, "workers clamp to the lane count");
    assert_eq!(v.lane_wall_ns.len() as u32, v.lanes);
    let serial = run_optimal_broadcast(&m, SimConfig::default().with_shards(4));
    let vs = &serial.result.vitals;
    assert_eq!(vs.workers, 0, "serial sharded runs report zero workers");
    assert!(vs.lane_wall_ns.is_empty());
}

/// The million-processor target: broadcast and all-reduce at `P = 1M`
/// complete and agree across the classic engine and every lane count.
/// Ignored by default — it is minutes of work in a debug build; the
/// `shard_scale` bench runs the same configuration in release as part
/// of its `--check` mode.
#[test]
#[ignore = "release-scale run; covered by `shard_scale --check`"]
fn million_proc_collectives_agree() {
    let m = LogP::new(60, 4, 8, 1_000_000).unwrap();
    let classic = run_optimal_broadcast(&m, SimConfig::default());
    for shards in [2u32, 8] {
        let lanes = run_optimal_broadcast(&m, SimConfig::default().with_shards(shards));
        assert_eq!(projection(&classic.result), projection(&lanes.result));
    }
}
