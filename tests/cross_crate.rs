//! Integration tests spanning the workspace crates through the `logp`
//! facade: closed-form analysis (logp-core) vs execution (logp-sim +
//! logp-algos), network-derived model parameters (logp-net) feeding
//! algorithm analysis, and baseline models (logp-baselines) agreeing with
//! their closed forms.

use logp::algos::broadcast::{run_optimal_broadcast, run_shape_broadcast};
use logp::algos::fft::kernel::{fft_in_place, max_error};
use logp::algos::fft::run_parallel_fft;
use logp::algos::reduce::run_optimal_sum;
use logp::baselines::{bsp_sum, BspMachine};
use logp::core::broadcast::{optimal_broadcast_time, shape_broadcast_time, TreeShape};
use logp::core::extensions::Pattern;
use logp::core::models::Bsp;
use logp::core::summation::{min_sum_time, sum_capacity_bounded};
use logp::net::patterns::{derive_multi_gap, hypercube_ecube_congestion, Permutation};
use logp::net::{table1, Network, Topology};
use logp::prelude::*;

/// Every machine preset: analytic collective times equal simulated ones.
#[test]
fn presets_analytic_equals_simulated() {
    for preset in MachinePreset::all() {
        let m = preset.logp.with_p(32);
        let run = run_optimal_broadcast(&m, SimConfig::default());
        assert_eq!(
            run.completion,
            optimal_broadcast_time(&m),
            "broadcast mismatch on {}",
            preset.name
        );
        for shape in [TreeShape::Binomial, TreeShape::Binary] {
            let run = run_shape_broadcast(&m, shape, SimConfig::default());
            assert_eq!(
                run.completion,
                shape_broadcast_time(&m, shape),
                "{}",
                preset.name
            );
        }
    }
}

/// The optimal summation executes exactly at its analytic deadline on the
/// CM-5 preset.
#[test]
fn cm5_summation_meets_deadline() {
    let m = MachinePreset::cm5().logp.with_p(16);
    let n = 2000;
    let t = min_sum_time(&m, n, m.p);
    assert!(sum_capacity_bounded(&m, t, m.p) >= n);
    let run = run_optimal_sum(&m, t, SimConfig::default());
    assert_eq!(run.completion, t);
    let expected: f64 = (0..run.inputs).map(|v| v as f64).sum();
    assert_eq!(run.total, expected);
}

/// The FFT flows end-to-end through the facade: real data, simulated
/// machine, verified numerics.
#[test]
fn facade_fft_is_numerically_correct() {
    let m = MachinePreset::cm5().logp.with_p(8);
    let n = 512u64;
    let input: Vec<Cplx> = (0..n)
        .map(|i| Cplx::new((i as f64 * 0.05).cos(), 0.25))
        .collect();
    let spec = FftRunSpec {
        n,
        schedule: RemapSchedule::Staggered,
        local_cost: 10,
        compute: Some(ComputeModel::cm5()),
    };
    let run = run_parallel_fft(&m, &input, &spec, SimConfig::default());
    let mut reference = input.clone();
    fft_in_place(&mut reference);
    assert!(max_error(&run.output, &reference) < 1e-8);
}

/// Section 5 feeds Section 3: congestion measured on a real topology
/// (logp-net) produces a pattern-dependent gap (logp-core extension), and
/// the degraded gap changes algorithm analysis the way the paper warns.
#[test]
fn measured_congestion_degrades_the_model() {
    let base = LogP::new(60, 20, 40, 256).unwrap();
    let good = hypercube_ecube_congestion(&Permutation::shift(256, 1));
    let bad = hypercube_ecube_congestion(&Permutation::bit_reversal(256));
    let mg = derive_multi_gap(&base, &good, &bad);
    let good_model = mg.model_for(Pattern::ContentionFree);
    let bad_model = mg.model_for(Pattern::General);
    // A bandwidth-bound pattern (stream of n messages) suffers the full
    // congestion factor.
    let n = 10_000;
    let good_t = logp::core::cost::stream_time(&good_model, n);
    let bad_t = logp::core::cost::stream_time(&bad_model, n);
    assert!(
        bad_t as f64 / good_t as f64 > 3.0,
        "bit-reversal congestion must show up in the stream bound"
    );
}

/// Table 1's suggested LogP overhead for the CM-5 Active-Message layer is
/// consistent with the §4.1.4 calibration used by the presets (~2 µs).
#[test]
fn table1_and_preset_calibrations_agree() {
    let cm5_am = table1()
        .into_iter()
        .find(|r| r.machine == "CM-5 (AM)")
        .expect("row exists");
    let o_us = cm5_am.suggested_logp_o() * cm5_am.cycle_ns / 1000.0;
    let preset = MachinePreset::cm5();
    let preset_o_us = preset.cycles_to_us(preset.logp.o);
    assert!(
        (o_us - preset_o_us).abs() < 0.7,
        "Table 1 suggests o = {o_us:.2} µs; preset uses {preset_o_us} µs"
    );
}

/// The BSP baseline's executed cost is bounded below by the LogP optimum
/// for the same problem (the paper's §6.3 argument, quantified).
#[test]
fn bsp_execution_never_beats_logp_optimum() {
    let m = LogP::new(6, 2, 4, 16).unwrap();
    let machine = BspMachine::from_model(&Bsp::from_logp(&m));
    for n in [64u64, 256, 1024] {
        let values: Vec<f64> = (0..n).map(|v| v as f64).collect();
        let (run, total) = bsp_sum(&machine, &values);
        assert_eq!(total, values.iter().sum::<f64>());
        let logp_t = min_sum_time(&m, n, m.p);
        assert!(
            run.cost >= logp_t,
            "BSP cost {} below LogP optimum {logp_t} for n={n}",
            run.cost
        );
    }
}

/// Topology diameters bound the unloaded hop term of the §5.2 timing
/// model: T(M, diameter) >= T(M, avg).
#[test]
fn timing_model_is_monotone_in_distance() {
    let net = Network::build(Topology::Torus2D, 64);
    let avg = net.avg_endpoint_distance();
    let diam = net.endpoint_diameter() as f64;
    assert!(diam >= avg);
    for row in table1() {
        assert!(row.unloaded_time(160, diam) >= row.unloaded_time(160, avg));
    }
}

/// Broadcast under jitter stays correct and within the deterministic
/// bound on every preset.
#[test]
fn jittered_broadcast_within_bound_on_presets() {
    for preset in MachinePreset::all() {
        let m = preset.logp.with_p(16);
        let bound = optimal_broadcast_time(&m);
        let cfg = SimConfig::default().with_jitter(m.l / 2).with_seed(99);
        let run = run_optimal_broadcast(&m, cfg);
        assert!(run.completion <= bound, "{}", preset.name);
        assert_eq!(run.arrivals.len(), 16);
    }
}

/// The §4.2.3 model contrast, quantified end-to-end: the CRCW PRAM labels
/// a star graph in a handful of free steps; LogP charges the hub's owner
/// for every message and the naive algorithm pays dearly.
#[test]
fn crcw_loophole_vs_logp_contention() {
    use logp::algos::cc::{cc_sequential, run_cc, Graph};
    use logp::baselines::pram_cc;

    let n = 128;
    let g = Graph::star(n);
    let (pram_labels, pram_steps) = pram_cc(n, &g.edges).expect("legal CRCW program");
    assert_eq!(pram_labels, cc_sequential(&g));
    assert!(
        pram_steps <= 6,
        "the PRAM sees no hot spot: {pram_steps} steps"
    );

    let m = LogP::new(60, 20, 40, 8).unwrap();
    let logp_run = run_cc(&m, &g, false, SimConfig::default());
    assert_eq!(logp_run.labels, pram_labels);
    // Same answer; thousands of cycles apart — the paper's point.
    assert!(
        logp_run.completion > 100 * pram_steps,
        "LogP must reveal the cost the CRCW PRAM hides: {} cycles vs {} steps",
        logp_run.completion,
        pram_steps
    );
}

/// All-reduce strategies agree with a PRAM scan-of-one... rather: with
/// each other and with the direct sum, through the facade.
#[test]
fn allreduce_strategies_agree() {
    use logp::algos::allreduce::{run_allreduce_doubling, run_allreduce_reduce_bcast};
    let m = LogP::new(60, 20, 40, 16).unwrap();
    let values: Vec<f64> = (0..16).map(|i| (i as f64).sqrt()).collect();
    let a = run_allreduce_reduce_bcast(&m, &values, SimConfig::default());
    let b = run_allreduce_doubling(&m, &values, SimConfig::default());
    assert_eq!(a.value, b.value);
    assert_eq!(a.value, values.iter().sum::<f64>());
}

/// The bisection calibration reproduces the paper's own g: the CM-5
/// preset's gap equals 16-byte payloads at the quoted ~4-5 MB/s.
#[test]
fn bisection_calibration_is_consistent_with_preset() {
    use logp::net::calibrate_g_us;
    let preset = MachinePreset::cm5();
    let g_us = preset.cycles_to_us(preset.logp.g);
    // 16 B / 4 µs = 4 MB/s; the paper quotes 5 MB/s raw and chooses 4 µs.
    let implied_bw = preset.msg_payload_bytes as f64 / g_us;
    assert!((3.0..=5.0).contains(&implied_bw));
    assert!((calibrate_g_us(16.0, implied_bw) - g_us).abs() < 1e-9);
}

/// Parameter extraction works across every preset (the machine-summary
/// vision of §7).
#[test]
fn extraction_works_on_every_preset() {
    use logp::algos::measure::extract_params;
    for preset in MachinePreset::all() {
        let m = preset.logp.with_p(2);
        let params = extract_params(&m, 300, SimConfig::default());
        assert!(
            params.worst_relative_error(&m) < 0.02,
            "{}: {params:?}",
            preset.name
        );
    }
}

/// Stencil + gather compose: a Jacobi sweep followed by a gather of the
/// block means onto processor 0 (a tiny "simulation + diagnostics" app).
#[test]
fn stencil_and_gather_compose() {
    use logp::algos::gather::run_gather;
    use logp::algos::stencil::{jacobi_sequential, run_jacobi};
    let m = LogP::new(30, 5, 10, 4).unwrap();
    let field: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let run = run_jacobi(&m, &field, 3, SimConfig::default());
    assert_eq!(run.field.len(), 32);
    let seq = jacobi_sequential(&field, 3);
    for (a, b) in run.field.iter().zip(&seq) {
        assert!((a - b).abs() < 1e-12);
    }
    // Gather per-processor checksums (as integers) at the root.
    let sums: Vec<u64> = (0..4)
        .map(|q| run.field[q * 8..(q + 1) * 8].iter().sum::<f64>().round() as u64)
        .collect();
    let g = run_gather(&m, &sums, SimConfig::default());
    assert_eq!(g.received.len(), 3);
}
