//! Determinism and correctness properties of the fault-injection layer
//! (see `docs/FAILURE_MODEL.md`): seeded fault plans replay
//! bit-identically on any worker count, fault decisions are monotone in
//! the configured rate, and the reliable collectives complete correctly
//! under a 5% drop rate on every machine preset.

use logp::algos::allreduce::run_reliable_allreduce;
use logp::algos::broadcast::{run_reliable_broadcast, run_survivor_broadcast};
use logp::algos::reduce::run_reliable_sum;
use logp::algos::resilient::ResilientError;
use logp::prelude::*;
use logp::sim::reliable::{Endpoint, RetryConfig};
use logp::sim::runner::{sweep_map, Threads};
use logp::sim::{Cause, FaultPlan};
use proptest::prelude::*;

const DROP_PPM: [u32; 3] = [0, 50_000, 150_000];

/// A small random machine (modest parameters keep proptest fast).
fn machine() -> impl Strategy<Value = LogP> {
    (1u64..=20, 0u64..=8, 1u64..=10, 2u32..=16)
        .prop_map(|(l, o, g, p)| LogP::new(l, o, g, p).expect("generated parameters are valid"))
}

fn retry_for(m: &LogP) -> RetryConfig {
    RetryConfig::for_tree(m, m.p).with_max_retries(16)
}

/// One measured sweep row, compared bit-for-bit across thread counts.
fn sweep_rows(m: &LogP, seed: u64, threads: Threads) -> Vec<(u64, u64, u64, u64)> {
    sweep_map(threads, &DROP_PPM, |&ppm| {
        let plan = FaultPlan::new(seed).with_drop_ppm(ppm);
        let run = run_reliable_broadcast(m, &plan, retry_for(m), SimConfig::default())
            .expect("no crashes");
        (
            run.completion,
            run.retries,
            run.result.stats.msgs_dropped,
            run.result.stats.total_msgs,
        )
    })
}

/// P0 sends one reliable message to P1; records the delivery instant.
struct ReliablePing {
    ep: Endpoint,
    got: SharedCell<Vec<u64>>,
}

impl Process for ReliablePing {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.me() == 0 {
            self.ep.send(ctx, 1, 7, Data::U64(1));
        }
    }
    fn on_message(&mut self, msg: &Message, ctx: &mut Ctx<'_>) {
        if self.ep.on_message(msg, ctx).is_some() {
            let now = ctx.now();
            self.got.with(|v| v.push(now));
        }
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        self.ep.on_timer(tag, ctx);
    }
}

/// Delivery time of a single reliable message under `drop_ppm`.
fn reliable_ping_delivery(m: &LogP, seed: u64, drop_ppm: u32) -> u64 {
    let plan = FaultPlan::new(seed).with_drop_ppm(drop_ppm);
    let got: SharedCell<Vec<u64>> = SharedCell::new();
    let retry = retry_for(m);
    let mut sim = Sim::new(m.with_p(2), SimConfig::default().with_faults(plan));
    let g = got.clone();
    sim.set_all(move |_| {
        Box::new(ReliablePing {
            ep: Endpoint::new(retry.clone()),
            got: g.clone(),
        })
    });
    sim.run().unwrap();
    let got = got.get();
    assert_eq!(got.len(), 1, "the message must eventually deliver");
    got[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A seeded fault plan replays bit-identically on 1, 4, and 8 worker
    /// threads: the whole measured sweep row must match.
    #[test]
    fn fault_sweep_is_thread_count_invariant(m in machine(), seed in 0u64..10_000) {
        let rows1 = sweep_rows(&m, seed, Threads::Fixed(1));
        let rows4 = sweep_rows(&m, seed, Threads::Fixed(4));
        let rows8 = sweep_rows(&m, seed, Threads::Fixed(8));
        prop_assert_eq!(&rows1, &rows4);
        prop_assert_eq!(&rows1, &rows8);
    }

    /// Fault decisions are pure and monotone in the configured rate: a
    /// message dropped at rate lo is also dropped at any rate hi >= lo.
    #[test]
    fn drop_decisions_are_monotone_in_rate(
        seed in 0u64..u64::MAX,
        src in 0u32..64, dst in 0u32..64, ident in 0u64..1_000_000, attempt in 0u64..8,
        lo in 0u32..=1_000_000, delta in 0u32..=1_000_000,
    ) {
        let hi = lo.saturating_add(delta).min(1_000_000);
        let plo = FaultPlan::new(seed).with_drop_ppm(lo);
        let phi = FaultPlan::new(seed).with_drop_ppm(hi);
        // Purity: same inputs, same decision.
        prop_assert_eq!(
            plo.decide(src, dst, ident, attempt),
            plo.decide(src, dst, ident, attempt)
        );
        if plo.decide(src, dst, ident, attempt).drop {
            prop_assert!(phi.decide(src, dst, ident, attempt).drop);
        }
    }

    /// On a single reliable channel with drop-only faults, the delivery
    /// time is monotone non-decreasing in the drop rate: raising the
    /// rate only grows the set of dropped attempts, and the retransmit
    /// schedule (exponential backoff, seeded jitter) is fixed per
    /// attempt, so delivery can only move to a later attempt.
    #[test]
    fn single_channel_delivery_is_monotone_in_drop_rate(
        m in machine(), seed in 0u64..10_000,
    ) {
        let mut last = 0u64;
        for ppm in [0u32, 25_000, 100_000, 250_000] {
            let t = reliable_ping_delivery(&m, seed, ppm);
            prop_assert!(
                t >= last,
                "delivery at rho={} ({} cycles) earlier than at the lower rate ({last})",
                ppm, t
            );
            last = t;
        }
    }

    /// The sharded lane engine is lane-count invariant on random
    /// machines: lane counts 2, 3, and 8 produce bit-identical
    /// `SimResult`s whatever the jitter, observability, and fault-plan
    /// combination — and at zero jitter (where both engines sample the
    /// same randomness) the classic engine agrees on the workload-level
    /// projection. The classic comparison runs uncapped: destination
    /// admission is exactly what the sharded engine relaxes, so capped
    /// hot-spot traffic may legally complete earlier on lanes.
    #[test]
    fn sharded_runs_are_lane_count_invariant(
        m in machine(), seed in 0u64..10_000, jitter in 0u64..=8,
        observed in proptest::bool::ANY, faulty in proptest::bool::ANY,
    ) {
        let base = if observed { SimConfig::observed() } else { SimConfig::default() };
        let mut config = base.with_jitter(jitter);
        if faulty {
            config = config.with_faults(FaultPlan::new(seed).with_drop_ppm(50_000));
        }
        let run = |config: &SimConfig, n: u32| {
            let mut sim = Sim::new(m, config.clone().with_shards(n));
            sim.set_all(|_| Box::new(ScatterStorm { rounds: 3 }));
            sim.run().expect("scatter terminates without waiting on receptions")
        };
        let r2 = run(&config, 2);
        let r3 = run(&config, 3);
        let r8 = run(&config, 8);
        prop_assert_eq!(&r2, &r3);
        prop_assert_eq!(&r2, &r8);
        if jitter == 0 {
            let mut uncapped = config.clone();
            uncapped.enforce_capacity = false;
            let classic = run(&uncapped, 0);
            let lanes = run(&uncapped, 2);
            prop_assert_eq!(
                workload_projection(&classic),
                workload_projection(&lanes)
            );
        }
    }

    /// The parallel window executor is worker-count invariant on random
    /// machines: at a fixed lane count, workers 1, 2, 4, and 8 reproduce
    /// the serial sharded `SimResult` bit for bit — whatever the jitter,
    /// observability, fault-plan, and sampling combination. Streaming
    /// runs also compare the exported JSONL byte for byte.
    #[test]
    fn parallel_runs_are_worker_count_invariant(
        m in machine(), seed in 0u64..10_000, jitter in 0u64..=8,
        observed in proptest::bool::ANY, faulty in proptest::bool::ANY,
        streamed in proptest::bool::ANY,
    ) {
        let base = if observed { SimConfig::observed() } else { SimConfig::default() };
        let mut config = base.with_jitter(jitter).with_shards(4);
        if faulty {
            config = config
                .with_faults(FaultPlan::new(seed).with_drop_ppm(50_000).with_dup_ppm(20_000));
        }
        let dir = std::env::temp_dir().join(format!("logp_worker_prop_{}", std::process::id()));
        if streamed {
            std::fs::create_dir_all(&dir).unwrap();
        }
        let run = |workers: u32| -> (logp::sim::SimResult, String) {
            let mut config = config.clone().with_workers(workers);
            let path = dir.join(format!("s{seed}_w{workers}.jsonl"));
            if streamed {
                config = config
                    .with_sink(logp::sim::SinkSpec::Jsonl(path.clone()))
                    .with_sampling(logp::sim::ObsSampling::Stride(2));
            }
            let mut sim = Sim::new(m, config);
            sim.set_all(|_| Box::new(ScatterStorm { rounds: 3 }));
            let r = sim.run().expect("scatter terminates without waiting on receptions");
            let text = if streamed {
                std::fs::read_to_string(&path).unwrap()
            } else {
                String::new()
            };
            (r, text)
        };
        let serial = run(0);
        for workers in [1u32, 2, 4, 8] {
            let par = run(workers);
            prop_assert_eq!(&serial.0, &par.0, "diverged at {} workers", workers);
            prop_assert_eq!(&serial.1, &par.1, "stream diverged at {} workers", workers);
        }
        if streamed {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Fire-and-forget traffic for the shard invariance property: timers,
/// compute, and pseudo-random fan-out, with termination independent of
/// receptions (so drop plans cannot deadlock it).
struct ScatterStorm {
    rounds: u64,
}

impl Process for ScatterStorm {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.compute(u64::from(ctx.me() % 5) * 3, 0);
        ctx.timer(1 + u64::from(ctx.me() % 3), 0);
    }
    fn on_timer(&mut self, round: u64, ctx: &mut Ctx<'_>) {
        let p = u64::from(ctx.procs());
        let me = u64::from(ctx.me());
        for k in 0..2u64 {
            let dst = (me + 1 + (me * 7 + round * 13 + k * 5) % (p - 1)) % p;
            if dst != me {
                ctx.send(dst as u32, round as u32, Data::U64(me * 100 + round));
            }
        }
        if round + 1 < self.rounds {
            ctx.timer(2 + (me + round) % 4, round + 1);
        }
    }
}

/// The engine-independent outcome of a run: completion, message counts,
/// and per-processor send/receive tallies. Event counts are engine
/// vocabulary (the classic engine's `Release` bookkeeping events have no
/// sharded counterpart) and stay out.
fn workload_projection(r: &logp::sim::SimResult) -> (u64, u64, u64, Vec<(u64, u64)>) {
    (
        r.stats.completion,
        r.stats.total_msgs,
        r.stats.msgs_dropped,
        r.stats
            .procs
            .iter()
            .map(|p| (p.msgs_sent, p.msgs_recvd))
            .collect(),
    )
}

/// The acceptance sweep: on every built-in machine preset, a seeded 5%
/// drop rate leaves broadcast, summation, and all-reduce correct, with
/// the retransmissions visible as `Cause::Retry` edges in the causal
/// DAG — and the runs replay bit-identically on 1, 4, and 8 threads.
#[test]
fn reliable_collectives_survive_5pct_drops_on_all_presets() {
    for preset in MachinePreset::all() {
        let m = preset.logp;
        let plan = FaultPlan::new(0x5EED_FA17).with_drop_ppm(50_000);
        let retry = retry_for(&m);
        let config = SimConfig::default().with_msg_log(true);

        let b = run_reliable_broadcast(&m, &plan, retry.clone(), config.clone()).unwrap();
        assert_eq!(b.arrivals.len(), m.p as usize, "{}", preset.name);

        let s = run_reliable_sum(&m, 256, &plan, retry.clone(), config.clone()).unwrap();
        assert_eq!(
            s.total,
            (0..256).map(|v| v as f64).sum::<f64>(),
            "{}",
            preset.name
        );

        let values: Vec<f64> = (0..m.p).map(|i| i as f64).collect();
        let a = run_reliable_allreduce(&m, &values, &plan, retry.clone(), config).unwrap();
        assert_eq!(a.value, values.iter().sum::<f64>(), "{}", preset.name);

        // Retries happened and are visible in the causal DAG.
        assert!(
            b.retries > 0,
            "{}: 5% drops must force retries",
            preset.name
        );
        let retry_edges = b
            .result
            .obs
            .msgs
            .iter()
            .filter(|r| matches!(r.cause, Cause::Retry(_)))
            .count();
        assert!(retry_edges > 0, "{}: no Cause::Retry edges", preset.name);

        // Bit-identical across worker counts.
        let rows1 = sweep_rows(&m, 0x5EED_FA17, Threads::Fixed(1));
        let rows4 = sweep_rows(&m, 0x5EED_FA17, Threads::Fixed(4));
        let rows8 = sweep_rows(&m, 0x5EED_FA17, Threads::Fixed(8));
        assert_eq!(rows1, rows4, "{}", preset.name);
        assert_eq!(rows1, rows8, "{}", preset.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential testing over random workload DAGs (`logp-wl`): any
    /// generated program completes bit-identically on the classic
    /// engine, the sharded engine at 2 and 4 lanes, and the parallel
    /// window executor — with and without a (delay + duplicate) fault
    /// plan. The machine keeps capacity slack (⌈L/g⌉ = 64) so the
    /// classic engine's capacity stall, which the sharded engine
    /// intentionally relaxes, never engages; drops are excluded because
    /// a dropped delivery leaves a DAG recv permanently unsatisfied
    /// (by design — `run_workload` reports it as `Incomplete`).
    #[test]
    fn fuzz_dags_are_engine_invariant_under_faults(
        seed in 0u64..10_000,
        faulty in proptest::bool::ANY,
    ) {
        use logp::wl::{gen_workload, run_workload, FuzzConfig};
        let m = LogP::new(64, 2, 1, 8).expect("valid model");
        let wl = gen_workload(seed, &FuzzConfig::default());
        let base = if faulty {
            SimConfig::default()
                .with_faults(FaultPlan::new(seed ^ 0xFA17).with_delay(120_000, 9).with_dup_ppm(60_000))
        } else {
            SimConfig::default()
        };
        let fingerprint = |cfg: SimConfig| {
            let run = run_workload(&wl, &m, cfg).expect("fault-free-or-delayed DAG completes");
            (
                run.completion,
                run.node_times.clone(),
                run.unmatched,
                run.result.stats.completion,
                run.result.stats.total_msgs,
                run.result.stats.procs.clone(),
            )
        };
        let classic = fingerprint(base.clone());
        prop_assert_eq!(&classic, &fingerprint(base.clone().with_shards(2)));
        prop_assert_eq!(&classic, &fingerprint(base.clone().with_shards(4)));
        prop_assert_eq!(&classic, &fingerprint(base.clone().with_shards(4).with_workers(2)));
    }
}

/// A crashed root re-roots the broadcast on the lowest survivor; a plan
/// that crashes everyone errors cleanly instead of hanging.
#[test]
fn crashed_root_re_roots_or_errors_cleanly() {
    let m = LogP::new(6, 2, 4, 8).unwrap();
    let plan = FaultPlan::new(1).with_crash(0, 0);
    let run = run_survivor_broadcast(&m, &plan, SimConfig::default()).unwrap();
    assert_eq!(run.arrivals.len(), 7);
    assert!(run.arrivals.contains(&(1, 0)), "P1 takes over as root");

    let mut all = FaultPlan::new(2);
    for q in 0..m.p {
        all = all.with_crash(q, 0);
    }
    assert_eq!(
        run_survivor_broadcast(&m, &all, SimConfig::default()).unwrap_err(),
        ResilientError::AllCrashed
    );
}
