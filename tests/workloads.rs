//! Workload DSL end-to-end tests: golden-corpus parity against the
//! built-in `Process` implementations (cycle-exact on all five
//! presets, identical across lane and worker counts), loader
//! error-message snapshots (every rejection path asserts its span and
//! message), text round-trips, trace-replay round-trips, and the
//! replayed-JSONL canonicalization pin.

use logp::algos::allreduce::run_allreduce_reduce_bcast;
use logp::algos::broadcast::run_optimal_broadcast;
use logp::algos::reduce::run_sum_schedule;
use logp::core::summation::optimal_sum_schedule;
use logp::prelude::*;
use logp::sim::{replay_jsonl, SinkSpec};
use logp::wl::{
    allreduce_workload, broadcast_workload, gen_workload, load_workload, parse_workload, preset,
    projection, run_workload, summation_workload, to_text, workload_from_obslog, FuzzConfig, WlRun,
};

/// `(name, machine, summation deadline)` for the five oracle presets.
fn presets() -> Vec<(&'static str, LogP, Cycles)> {
    vec![
        ("fig3", LogP::fig3(), 40),                          // L=6, o=2, g=4, P=8
        ("fig4", LogP::fig4(), 28),                          // L=5, o=2, g=4, P=8
        ("cm5", LogP::new(60, 20, 40, 16).unwrap(), 200),    // CM-5-like (§5)
        ("latency", LogP::new(200, 4, 8, 32).unwrap(), 250), // latency-dominated
        ("gap", LogP::new(2, 1, 12, 24).unwrap(), 40),       // gap-dominated
    ]
}

/// Every engine configuration the acceptance bar names: classic
/// (lane count 1), sharded lanes {2, 4, 8}, and the parallel window
/// executor at worker counts {1, 2, 4, 8}.
///
/// All configs relax the finite-capacity stall (the sharded engine
/// never enforces it), so cross-engine bit-identity is defined on the
/// capacity-relaxed semantics. The capacity-enforced classic engine is
/// still compared against the built-ins separately in each parity test.
fn engines() -> Vec<(String, SimConfig)> {
    let relax = |mut c: SimConfig| {
        c.enforce_capacity = false;
        c
    };
    let mut v = vec![("lanes1".to_string(), relax(SimConfig::default()))];
    for lanes in [2u32, 4, 8] {
        v.push((
            format!("lanes{lanes}"),
            relax(SimConfig::default().with_shards(lanes)),
        ));
    }
    for w in [1u32, 2, 4, 8] {
        v.push((
            format!("lanes8-workers{w}"),
            relax(SimConfig::default().with_shards(8).with_workers(w)),
        ));
    }
    v
}

type Projection = (Cycles, u64, u64, Vec<ProcStats>);

fn fingerprint(run: &WlRun) -> (Cycles, Vec<Cycles>, Projection) {
    (
        run.completion,
        run.node_times.clone(),
        projection(&run.result),
    )
}

use logp::sim::ProcStats;

// ---------------------------------------------------------------------
// Golden-corpus parity: DSL == built-in, cycle-exactly, on every
// preset and every engine configuration.
// ---------------------------------------------------------------------

#[test]
fn dsl_broadcast_matches_builtin_on_all_presets_and_engines() {
    for (name, m, _) in presets() {
        let wl = broadcast_workload(&m);
        wl.validate().expect("emitter output validates");
        // Capacity-enforced classic engine, compared like-for-like.
        let strict = run_workload(&wl, &m, SimConfig::default()).expect("strict classic");
        let strict_builtin = run_optimal_broadcast(&m, SimConfig::default());
        assert_eq!(
            strict.completion, strict_builtin.completion,
            "{name}: strict"
        );
        assert_eq!(
            projection(&strict.result),
            projection(&strict_builtin.result),
            "{name}: strict projection"
        );
        let mut baseline = None;
        for (eng, cfg) in engines() {
            let run =
                run_workload(&wl, &m, cfg.clone()).unwrap_or_else(|e| panic!("{name}/{eng}: {e}"));
            let builtin = run_optimal_broadcast(&m, cfg);
            assert_eq!(
                run.completion, builtin.completion,
                "{name}/{eng}: completion"
            );
            assert_eq!(
                projection(&run.result),
                projection(&builtin.result),
                "{name}/{eng}: projection vs built-in"
            );
            let fp = fingerprint(&run);
            match &baseline {
                None => baseline = Some(fp),
                Some(b) => assert_eq!(*b, fp, "{name}/{eng}: engine invariance"),
            }
        }
    }
}

#[test]
fn dsl_summation_matches_builtin_on_all_presets_and_engines() {
    for (name, m, t) in presets() {
        let sched = optimal_sum_schedule(&m, t);
        assert!(
            sched.procs() >= 2,
            "{name}: deadline {t} must engage more than one processor"
        );
        let wl = summation_workload(&m, t);
        wl.validate().expect("emitter output validates");
        // Capacity-enforced classic engine, compared like-for-like.
        let strict = run_workload(&wl, &m, SimConfig::default()).expect("strict classic");
        let strict_builtin = run_sum_schedule(&sched, SimConfig::default());
        assert_eq!(
            strict.completion, strict_builtin.completion,
            "{name}: strict"
        );
        assert_eq!(
            projection(&strict.result),
            projection(&strict_builtin.result),
            "{name}: strict projection"
        );
        let mut baseline = None;
        for (eng, cfg) in engines() {
            let run =
                run_workload(&wl, &m, cfg.clone()).unwrap_or_else(|e| panic!("{name}/{eng}: {e}"));
            let builtin = run_sum_schedule(&sched, cfg);
            assert_eq!(
                run.completion, builtin.completion,
                "{name}/{eng}: completion"
            );
            assert_eq!(
                projection(&run.result),
                projection(&builtin.result),
                "{name}/{eng}: projection vs built-in"
            );
            let fp = fingerprint(&run);
            match &baseline {
                None => baseline = Some(fp),
                Some(b) => assert_eq!(*b, fp, "{name}/{eng}: engine invariance"),
            }
        }
    }
}

#[test]
fn dsl_allreduce_matches_builtin_on_all_presets_and_engines() {
    for (name, m, _) in presets() {
        let wl = allreduce_workload(&m);
        wl.validate().expect("emitter output validates");
        let values: Vec<f64> = (0..m.p).map(f64::from).collect();
        // Capacity-enforced classic engine, compared like-for-like.
        let strict = run_workload(&wl, &m, SimConfig::default()).expect("strict classic");
        let strict_builtin = run_allreduce_reduce_bcast(&m, &values, SimConfig::default());
        assert_eq!(
            strict.completion, strict_builtin.completion,
            "{name}: strict"
        );
        assert_eq!(
            projection(&strict.result),
            projection(&strict_builtin.result),
            "{name}: strict projection"
        );
        let mut baseline = None;
        for (eng, cfg) in engines() {
            let run =
                run_workload(&wl, &m, cfg.clone()).unwrap_or_else(|e| panic!("{name}/{eng}: {e}"));
            let builtin = run_allreduce_reduce_bcast(&m, &values, cfg);
            assert_eq!(
                run.completion, builtin.completion,
                "{name}/{eng}: completion"
            );
            assert_eq!(
                projection(&run.result),
                projection(&builtin.result),
                "{name}/{eng}: projection vs built-in"
            );
            let fp = fingerprint(&run);
            match &baseline {
                None => baseline = Some(fp),
                Some(b) => assert_eq!(*b, fp, "{name}/{eng}: engine invariance"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Golden corpus files: the checked-in text must equal the emitters.
// ---------------------------------------------------------------------

#[test]
fn corpus_files_match_their_emitters() {
    let cases = [
        ("examples/workloads/broadcast_fig3.wl", {
            let mut wl = broadcast_workload(&LogP::fig3());
            wl.preset = Some("fig3".to_string());
            wl
        }),
        ("examples/workloads/summation_fig4.wl", {
            let mut wl = summation_workload(&LogP::fig4(), 28);
            wl.preset = Some("fig4".to_string());
            wl
        }),
        ("examples/workloads/allreduce_fig3.wl", {
            let mut wl = allreduce_workload(&LogP::fig3());
            wl.preset = Some("fig3".to_string());
            wl
        }),
    ];
    for (path, wl) in cases {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with `wl_run --emit-corpus`)"));
        assert_eq!(
            text,
            to_text(&wl),
            "{path} drifted from its emitter; regenerate with `wl_run --emit-corpus`"
        );
        let loaded = load_workload(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(loaded, wl, "{path}: loaded form differs from emitter");
        let m = preset(loaded.preset.as_deref().unwrap()).unwrap();
        run_workload(&loaded, &m, SimConfig::default()).unwrap_or_else(|e| panic!("{path}: {e}"));
    }
    // The hand-written tour exercises every statement kind and loads.
    let tour = std::fs::read_to_string("examples/workloads/tour.wl").expect("tour.wl");
    let wl = load_workload(&tour).expect("tour.wl loads");
    assert!(wl
        .nodes
        .iter()
        .any(|n| matches!(n.op, logp::wl::Op::Barrier)));
    assert!(wl
        .nodes
        .iter()
        .any(|n| matches!(n.op, logp::wl::Op::Timer { .. })));
    run_workload(&wl, &LogP::fig3(), SimConfig::default()).expect("tour.wl runs");
}

// ---------------------------------------------------------------------
// Text round-trips.
// ---------------------------------------------------------------------

#[test]
fn to_text_round_trips_structurally() {
    let mut cases = vec![
        broadcast_workload(&LogP::fig3()),
        summation_workload(&LogP::fig4(), 28),
        allreduce_workload(&LogP::new(60, 20, 40, 16).unwrap()),
    ];
    for seed in 0..64 {
        cases.push(gen_workload(seed, &FuzzConfig::default()));
    }
    for wl in cases {
        let text = to_text(&wl);
        let back = parse_workload(&text)
            .unwrap_or_else(|e| panic!("{}: round-trip parse failed: {e}\n{text}", wl.name));
        assert_eq!(back, wl, "round-trip changed `{}`", wl.name);
    }
}

#[test]
fn fuzz_generator_only_emits_validator_accepted_programs() {
    for seed in 0..256 {
        let wl = gen_workload(seed, &FuzzConfig::default());
        wl.validate()
            .unwrap_or_else(|e| panic!("seed {seed}: generator emitted invalid DAG: {e}"));
        // And the loaded text form agrees.
        let back = load_workload(&to_text(&wl)).expect("text form validates");
        assert_eq!(back, wl);
    }
}

#[test]
fn fuzz_workloads_complete_identically_on_both_engines() {
    let m = LogP::new(64, 2, 1, 8).unwrap(); // capacity 64: never binds
    for seed in 0..32 {
        let wl = gen_workload(seed, &FuzzConfig::default());
        let classic = run_workload(&wl, &m, SimConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed} classic: {e}"));
        for lanes in [2u32, 4] {
            let sharded = run_workload(&wl, &m, SimConfig::default().with_shards(lanes))
                .unwrap_or_else(|e| panic!("seed {seed} lanes{lanes}: {e}"));
            assert_eq!(
                fingerprint(&classic),
                fingerprint(&sharded),
                "seed {seed} lanes{lanes}"
            );
        }
    }
}

/// Back-to-back global barrier rounds with no other work: every
/// processor enters round 0 straight from `on_start` (so the quorum
/// completes with no event scheduled anywhere) and re-enters each next
/// round inside `on_barrier_release` (so the entry deltas are pushed
/// during the release itself). Both shapes used to deadlock or panic
/// the sharded window driver; this pins the fix on every engine.
#[test]
fn barrier_only_programs_run_on_every_engine() {
    let mut src = String::from("workload rounds\nprocs 4\n");
    for round in 0..3 {
        for q in 0..4 {
            src.push_str(&format!("b{round}_{q}: barrier @{q}\n"));
        }
    }
    let wl = load_workload(&src).expect("valid");
    let m = LogP::fig3().with_p(4);
    let mut baseline = None;
    for (eng, cfg) in engines() {
        let run = run_workload(&wl, &m, cfg).unwrap_or_else(|e| panic!("{eng}: {e}"));
        let fp = fingerprint(&run);
        match &baseline {
            None => baseline = Some(fp),
            Some(b) => assert_eq!(*b, fp, "{eng}"),
        }
    }
}

// ---------------------------------------------------------------------
// Trace replay: ObsLog -> DAG -> run reproduces the original timing.
// ---------------------------------------------------------------------

#[test]
fn replayed_broadcast_reproduces_the_original_run() {
    for (name, m, _) in presets() {
        let cfg = SimConfig::default().with_msg_log(true);
        let original = run_optimal_broadcast(&m, cfg.clone());
        let wl = workload_from_obslog(&original.result.obs, m.p, "replay").expect("replayable");
        wl.validate().expect("replay output validates");
        let run = run_workload(&wl, &m, cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(run.completion, original.completion, "{name}: completion");
        assert_eq!(
            projection(&run.result),
            projection(&original.result),
            "{name}: projection"
        );
    }
}

#[test]
fn replayed_workload_with_barriers_and_timers_reproduces_itself() {
    let tour = std::fs::read_to_string("examples/workloads/tour.wl").expect("tour.wl");
    let wl = load_workload(&tour).expect("loads");
    let m = LogP::fig3();
    let cfg = SimConfig::default().with_msg_log(true);
    let original = run_workload(&wl, &m, cfg.clone()).expect("runs");
    let replay =
        workload_from_obslog(&original.result.obs, wl.procs, "tour_replay").expect("replayable");
    let rerun = run_workload(&replay, &m, cfg).expect("replay runs");
    assert_eq!(rerun.completion, original.completion);
    assert_eq!(projection(&rerun.result), projection(&original.result));
}

#[test]
fn jsonl_to_dag_round_trip() {
    let m = LogP::fig3();
    let wl = broadcast_workload(&m);
    let path = std::env::temp_dir().join("logp_wl_roundtrip.obs.jsonl");
    let cfg = SimConfig::default().with_sink(SinkSpec::Jsonl(path.clone()));
    let original = run_workload(&wl, &m, cfg).expect("streamed run");
    let text = std::fs::read_to_string(&path).expect("jsonl written");
    let log = replay_jsonl(&text).expect("jsonl parses");
    let replay = workload_from_obslog(&log, m.p, "replay").expect("replayable");
    let rerun = run_workload(&replay, &m, SimConfig::default()).expect("replay runs");
    assert_eq!(rerun.completion, original.completion);
    let _ = std::fs::remove_file(&path);
}

/// The small fix pinned while wiring the converter: a *replayed* JSONL
/// log re-canonicalizes to exactly the ids of the retained log, under
/// shards (structured per-processor ids) at every lane count.
#[test]
fn replayed_jsonl_log_recanonicalizes_identically_under_shards() {
    let m = LogP::fig3();
    let wl = broadcast_workload(&m);
    let mut canonical: Option<logp::sim::ObsLog> = None;
    for lanes in [2u32, 4] {
        // Retained in-memory log.
        let retained = run_workload(
            &wl,
            &m,
            SimConfig::default().with_shards(lanes).with_msg_log(true),
        )
        .expect("retained run");
        // Streamed to JSONL and replayed back.
        let path = std::env::temp_dir().join(format!("logp_wl_canon_{lanes}.obs.jsonl"));
        run_workload(
            &wl,
            &m,
            SimConfig::default()
                .with_shards(lanes)
                .with_sink(SinkSpec::Jsonl(path.clone())),
        )
        .expect("streamed run");
        let text = std::fs::read_to_string(&path).expect("jsonl written");
        let mut replayed = replay_jsonl(&text).expect("jsonl parses");
        let mut kept = retained.result.obs.clone();
        // Streamed records use structured sharded ids; the retained log
        // and the replayed log must canonicalize to the same dense ids.
        kept.canonicalize();
        replayed.canonicalize();
        assert_eq!(kept, replayed, "lanes{lanes}: canonical logs differ");
        // Canonicalization is idempotent on a replayed log.
        let mut again = replayed.clone();
        again.canonicalize();
        assert_eq!(again, replayed, "lanes{lanes}: canonicalize not idempotent");
        match &canonical {
            None => canonical = Some(replayed),
            Some(c) => assert_eq!(*c, replayed, "lanes{lanes}: lane-count variance"),
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Loader error snapshots: every rejection path, with exact span,
// message, and help text.
// ---------------------------------------------------------------------

/// Load `src`, expect rejection, return `(line, col, msg, help)`.
fn reject(src: &str) -> (u32, u32, String, Option<String>) {
    match load_workload(src) {
        Ok(_) => panic!("program unexpectedly accepted:\n{src}"),
        Err(e) => (e.line, e.col, e.msg, e.help),
    }
}

fn snap(src: &str, line: u32, col: u32, msg: &str, help: Option<&str>) {
    let got = reject(src);
    assert_eq!(
        got,
        (line, col, msg.to_string(), help.map(str::to_string)),
        "for program:\n{src}"
    );
}

const HDR: &str = "workload t\nprocs 4\n";

#[test]
fn snapshot_header_errors() {
    snap(
        "",
        1,
        1,
        "missing `workload <name>` header (it must be the first statement)",
        None,
    );
    snap(
        "workload t\n",
        1,
        1,
        "missing `procs <N>` header (declare the processor count)",
        None,
    );
    snap(
        "a: compute 1 @0\n",
        1,
        1,
        "missing `workload <name>` header (it must come before the first node)",
        None,
    );
    snap(
        "workload t\na: compute 1 @0\n",
        2,
        1,
        "missing `procs <N>` header (it must come before the first node)",
        None,
    );
    snap(
        "workload t\nworkload u\n",
        2,
        1,
        "duplicate `workload` directive",
        None,
    );
    snap(
        "workload 0bad\n",
        1,
        10,
        "invalid workload name `0bad` (use [A-Za-z_][A-Za-z0-9_]*)",
        None,
    );
    snap(
        "workload t\nprocs 0\n",
        2,
        7,
        "procs must be at least 1",
        None,
    );
    snap(
        "workload t\nprocs many\n",
        2,
        7,
        "expected the processor count (a number), got `many`",
        None,
    );
    snap(
        "workload t\nprocs 2\nprocs 3\n",
        3,
        1,
        "duplicate `procs` directive",
        None,
    );
    snap(
        "workload t\nprocs 2\npreset fig3\npreset fig4\n",
        4,
        1,
        "duplicate `preset` directive",
        None,
    );
    snap(
        "workload t extra\n",
        1,
        12,
        "unexpected token `extra` after `workload <a name>`",
        None,
    );
    snap(
        "wrkload t\n",
        1,
        1,
        "expected `label:` to open the statement, got `wrkload`",
        Some("did you mean the directive `workload`?"),
    );
}

#[test]
fn snapshot_statement_errors() {
    snap(
        &format!("{HDR}send 0 -> 1\n"),
        3,
        1,
        "expected `label:` to open the statement, got `send`",
        Some("statements are labeled; try `n0: send ...`"),
    );
    snap(
        &format!("{HDR}0a: compute 1 @0\n"),
        3,
        1,
        "invalid label `0a` (labels are [A-Za-z_][A-Za-z0-9_]*)",
        None,
    );
    snap(
        &format!("{HDR}a:\n"),
        3,
        1,
        "label `a` has no operation; expected one of [\"send\", \"recv\", \"compute\", \
         \"barrier\", \"timer\"]",
        None,
    );
    snap(
        &format!("{HDR}a: snd 0 -> 1\n"),
        3,
        4,
        "unknown operation `snd`",
        Some("did you mean `send`?"),
    );
    snap(
        &format!("{HDR}a: send 0 1\n"),
        3,
        4,
        "`send` needs `<src> -> <dst>`",
        None,
    );
    snap(
        &format!("{HDR}a: send 0 to 1\n"),
        3,
        11,
        "expected `->` after the source processor, got `to`",
        None,
    );
    snap(
        &format!("{HDR}a: send\n"),
        3,
        4,
        "`send` needs `<src> -> <dst>`",
        None,
    );
    snap(
        &format!("{HDR}a: send x -> 1\n"),
        3,
        9,
        "expected the source processor (a number), got `x`",
        None,
    );
    snap(
        &format!("{HDR}a: send 0 -> 1 tga=3\nb: recv 0 -> 1\n"),
        3,
        16,
        "unknown option `tga=` on `send`",
        Some("did you mean `tag=`?"),
    );
    snap(
        &format!("{HDR}a: send 1 -> 0\nb: recv 1 -> 0 data=4\n"),
        4,
        16,
        "`data=` is only valid on `send`, not `recv`",
        None,
    );
    snap(
        &format!("{HDR}a: send 0 -> 1 tag=x\n"),
        3,
        20,
        "expected a value for `tag=` (a number), got `x`",
        None,
    );
    snap(
        &format!("{HDR}a: send 0 -> 1 tag=5000000000\n"),
        3,
        16,
        "tag 5000000000 does not fit 32 bits",
        None,
    );
    snap(
        &format!("{HDR}a: compute 5\n"),
        3,
        4,
        "`compute` needs a `@<proc>` processor assignment",
        None,
    );
    snap(
        &format!("{HDR}a: compute 5 p2\n"),
        3,
        14,
        "expected `@<proc>` after the cycle count, got `p2`",
        None,
    );
    snap(
        &format!("{HDR}a: barrier\n"),
        3,
        4,
        "`barrier` needs a `@<proc>` processor assignment",
        None,
    );
    snap(
        &format!("{HDR}a: compute 1 @0\nb: compute 5 @0 after a\n"),
        4,
        17,
        "unexpected token `after` at end of `compute` statement",
        Some("did you mean `after:` (with the colon)?"),
    );
    snap(
        &format!("{HDR}a: compute 1 @0\nb: compute 5 @0 after:\n"),
        4,
        17,
        "`after:` needs at least one dependency label",
        None,
    );
    snap(
        &format!("{HDR}a: compute 1 @0\nb: compute 5 @0 after: , a\n"),
        4,
        24,
        "expected a dependency label, got `,`",
        None,
    );
    snap(
        &format!("{HDR}a: compute 1 @0\nb: compute 5 @0 after: a,\n"),
        4,
        25,
        "trailing `,` in `after:` list (expected another label)",
        None,
    );
    snap(
        &format!("{HDR}aa: compute 1 @0\nb: compute 5 @0 after: ax\n"),
        4,
        24,
        "unknown dependency `ax`",
        Some("did you mean `aa`?"),
    );
    snap(
        &format!("{HDR}a: compute 1 @0\na: compute 2 @0\n"),
        4,
        1,
        "duplicate label `a` (first defined at line 3)",
        None,
    );
    snap(
        &format!("{HDR}a: compute 1 @0 $\n"),
        3,
        17,
        "unexpected character `$`",
        None,
    );
}

#[test]
fn snapshot_validator_errors() {
    snap(
        &format!("{HDR}a: compute 1 @9\n"),
        3,
        1,
        "node `a` runs on processor 9 but the workload declares procs 4 (valid: 0..=3)",
        None,
    );
    snap(
        &format!("{HDR}a: send 0 -> 9\n"),
        3,
        1,
        "send `a` targets processor 9 but the workload declares procs 4 (valid: 0..=3)",
        None,
    );
    snap(
        &format!("{HDR}a: send 2 -> 2\n"),
        3,
        1,
        "send `a` sends processor 2 a message to itself; the LogP network has no self-loop",
        None,
    );
    snap(
        &format!("{HDR}a: recv 3 -> 3\n"),
        3,
        1,
        "recv `a` expects a message from its own processor 3; the LogP network has no self-loop",
        None,
    );
    snap(
        &format!("{HDR}a: compute 1 @0\nb: compute 1 @1 after: a\n"),
        4,
        24,
        "node `b` (processor 1) depends on `a` (processor 0); `after:` edges must stay on \
         one processor",
        Some("cross-processor ordering is carried by a send/recv pair on a shared tag"),
    );
    snap(
        &format!("{HDR}a: compute 1 @0\nb: compute 1 @0 after: a, a\n"),
        4,
        27,
        "node `b` lists dependency `a` twice",
        None,
    );
    snap(
        &format!("{HDR}a: compute 1 @0 after: a\n"),
        3,
        24,
        "node `a` depends on itself",
        None,
    );
    snap(
        &format!("{HDR}a: send 0 -> 1\n"),
        3,
        1,
        "send `a` has no matching recv: channel 0 -> 1 tag=0 has 1 send(s) but 0 recv(s)",
        Some(
            "every send needs exactly one recv on the same (src, dst, tag) channel; the \
             i-th send pairs with the i-th recv in declaration order",
        ),
    );
    snap(
        &format!("{HDR}a: recv 0 -> 1\n"),
        3,
        1,
        "recv `a` has no matching send: channel 0 -> 1 tag=0 has 0 send(s) but 1 recv(s)",
        Some(
            "every send needs exactly one recv on the same (src, dst, tag) channel; the \
             i-th send pairs with the i-th recv in declaration order",
        ),
    );
    // Same channel, mismatched tags count as unmatched too.
    snap(
        &format!("{HDR}a: send 0 -> 1 tag=1\nb: recv 0 -> 1 tag=2\n"),
        3,
        1,
        "send `a` has no matching recv: channel 0 -> 1 tag=1 has 1 send(s) but 0 recv(s)",
        Some(
            "every send needs exactly one recv on the same (src, dst, tag) channel; the \
             i-th send pairs with the i-th recv in declaration order",
        ),
    );
    snap(
        &format!("{HDR}a: barrier @0\nb: barrier @0\nc: barrier @1\n"),
        3,
        1,
        "uneven barrier participation: processor 0 enters 2 barrier(s) but processor 1 \
         enters 1; the global barrier would never release",
        Some("give every processor the same number of barrier statements"),
    );
    snap(
        &format!("{HDR}a: compute 1 @0 after: b\nb: compute 1 @0 after: a\n"),
        3,
        1,
        "dependency cycle: `a` -> `b` -> `a`",
        Some(
            "a node cannot (transitively) wait on itself; check `after:` lists, send/recv \
             pairing order, and barrier rounds",
        ),
    );
}

// ---------------------------------------------------------------------
// Interpreter diagnostics are errors, not panics.
// ---------------------------------------------------------------------

#[test]
fn dropped_message_reports_incomplete_not_panic() {
    let wl = load_workload(
        "workload drop\nprocs 2\n\
         tx: send 0 -> 1\n\
         rx: recv 0 -> 1\n",
    )
    .expect("valid");
    let m = LogP::fig3().with_p(2);
    // A plan that drops everything: the recv can never complete.
    let plan = logp::sim::FaultPlan::new(7).with_drop_ppm(1_000_000);
    let err = run_workload(&wl, &m, SimConfig::default().with_faults(plan))
        .expect_err("dropped message must surface");
    let msg = err.to_string();
    assert!(
        msg.contains("`rx`") && msg.contains("1/2"),
        "unexpected diagnostic: {msg}"
    );
}
