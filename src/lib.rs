//! # logp — the LogP parallel machine model, as a toolkit
//!
//! A comprehensive Rust implementation of
//! *"LogP: Towards a Realistic Model of Parallel Computation"*
//! (Culler, Karp, Patterson, Sahay, Schauser, Santos, Subramonian,
//! von Eicken — PPoPP 1993): the model and its closed-form analysis, a
//! deterministic discrete-event simulator implementing the model's
//! execution semantics, the paper's full algorithm suite (broadcast,
//! summation, scan, FFT, LU, sorting, connected components), the
//! network substrate of Section 5, and executable PRAM/BSP baselines.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] (`logp-core`) — parameters, calibration, closed forms;
//! * [`sim`] (`logp-sim`) — the LogP machine simulator;
//! * [`algos`] (`logp-algos`) — portable parallel algorithms;
//! * [`net`] (`logp-net`) — topologies, unloaded timing, saturation;
//! * [`baselines`] (`logp-baselines`) — executable PRAM and BSP;
//! * [`calib`] (`logp-calib`) — black-box (L, o, g, P) calibration by
//!   micro-benchmark, with simulator and packet-network backends;
//! * [`wl`] (`logp-wl`) — the workload DSL: schedule IR, text loader,
//!   DAG interpreter, trace replay, and fuzz generation.
//!
//! ## Quickstart
//!
//! ```
//! use logp::core::LogP;
//! use logp::core::broadcast::optimal_broadcast_time;
//! use logp::algos::broadcast::run_optimal_broadcast;
//! use logp::sim::SimConfig;
//!
//! // The paper's Figure 3 machine: P = 8, L = 6, g = 4, o = 2.
//! let machine = LogP::fig3();
//! assert_eq!(optimal_broadcast_time(&machine), 24);
//!
//! // And the same broadcast executed on the simulator:
//! let run = run_optimal_broadcast(&machine, SimConfig::default());
//! assert_eq!(run.completion, 24);
//! ```

pub use logp_algos as algos;
pub use logp_baselines as baselines;
pub use logp_calib as calib;
pub use logp_core as core;
pub use logp_net as net;
pub use logp_sim as sim;
pub use logp_wl as wl;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use logp_algos::fft::{ComputeModel, Cplx, FftRunSpec};
    pub use logp_algos::remap::{RemapSchedule, RemapSpec};
    pub use logp_core::{Cycles, LogP, MachinePreset, ProcId};
    pub use logp_sim::{Ctx, Data, Message, Process, SharedCell, Sim, SimConfig};
    pub use logp_wl::{load_workload, run_workload, Workload};
}
