#!/usr/bin/env bash
# Regenerate every experiment of EXPERIMENTS.md (quick mode).
#
# Usage: scripts/run_experiments.sh [--full] [--check] [output-dir]
#
#   --full   paper-scale parameters (slower)
#   --check  don't run anything; verify the experiment set hasn't
#            drifted: every binary under crates/bench/src/bin is either
#            run by this script or on the explicit skip list below, every
#            skipped name still exists, and every experiment binary is
#            documented in EXPERIMENTS.md.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# Binaries that are deliberately NOT experiments (each must still exist;
# --check fails on stale entries):
#   engine_hotloop  - engine micro-benchmark harness (own --reps flags,
#                     exercised by the CI bench-smoke job)
#   trace_overhead  - observability overhead gate (CI runs it --check)
SKIP="engine_hotloop trace_overhead"

is_skipped() {
  case " $SKIP " in *" $1 "*) return 0 ;; *) return 1 ;; esac
}

# The experiment set is discovered, not hardcoded: a new bench binary is
# picked up automatically (or must be added to SKIP explicitly).
BINS=""
for f in "$ROOT"/crates/bench/src/bin/*.rs; do
  b="$(basename "$f" .rs)"
  is_skipped "$b" || BINS="$BINS $b"
done

FULL=""
CHECK=0
while [ $# -gt 0 ]; do
  case "$1" in
    --full) FULL="--full" ;;
    --check) CHECK=1 ;;
    *) break ;;
  esac
  shift
done

if [ "$CHECK" = 1 ]; then
  status=0
  for s in $SKIP; do
    if [ ! -f "$ROOT/crates/bench/src/bin/$s.rs" ]; then
      echo "DRIFT: skip list names '$s' but crates/bench/src/bin/$s.rs does not exist" >&2
      status=1
    fi
  done
  for b in $BINS; do
    if ! grep -q "\`$b\`" "$ROOT/EXPERIMENTS.md"; then
      echo "DRIFT: experiment binary '$b' is not documented in EXPERIMENTS.md" >&2
      status=1
    fi
  done
  if [ "$status" = 0 ]; then
    echo "no drift: $(echo "$BINS" | wc -w) experiment binaries, all documented; skip list clean"
  fi
  exit "$status"
fi

OUT="${1:-experiment-output}"
mkdir -p "$OUT"
for b in $BINS; do
  echo "== $b =="
  cargo run --release -q -p logp-bench --bin "$b" -- $FULL | tee "$OUT/$b.txt"
  echo
done
echo "outputs written to $OUT/"
