#!/usr/bin/env bash
# Regenerate every experiment of EXPERIMENTS.md (quick mode).
# Usage: scripts/run_experiments.sh [--full] [output-dir]
set -euo pipefail
FULL=""
if [ "${1:-}" = "--full" ]; then FULL="--full"; shift; fi
OUT="${1:-experiment-output}"
mkdir -p "$OUT"
BINS="fig2_trends fig3_broadcast fig4_summation fig5_layouts fig6_fft_times \
      fig7_mflops fig8_bandwidth tbl_avg_distance tbl1_unloaded saturation \
      lu_layouts sweep_collectives capacity_limit sort_compare cc_contention \
      model_compare param_extraction stencil_volume matmul_layouts \
      permutation_traffic kbcast_crossover product_lines"
for b in $BINS; do
  echo "== $b =="
  cargo run --release -q -p logp-bench --bin "$b" -- $FULL | tee "$OUT/$b.txt"
  echo
done
echo "outputs written to $OUT/"
