//! Explore the 4-dimensional machine space (§7): how each LogP parameter
//! reshapes the optimal algorithms, and what each real machine's network
//! interface costs.
//!
//! ```sh
//! cargo run --release --example machine_explorer
//! ```

use logp::core::broadcast::{optimal_broadcast_time, optimal_broadcast_tree};
use logp::core::extensions::LogGP;
use logp::core::summation::min_sum_time;
use logp::net::table1;
use logp::prelude::*;

fn main() {
    let base = LogP::new(60, 20, 40, 64).unwrap();
    println!("base machine: {base} (CM-5 calibration)\n");

    println!("sensitivity of the optimal broadcast to each parameter:");
    println!(
        "{:>12} {:>10} {:>12} {:>10}",
        "variation", "bcast", "sum(4096)", "fan-out"
    );
    let variants: Vec<(&str, LogP)> = vec![
        ("base", base),
        (
            "L x4",
            LogP {
                l: base.l * 4,
                ..base
            },
        ),
        (
            "o /10",
            LogP {
                o: base.o / 10,
                ..base
            },
        ),
        (
            "g /4",
            LogP {
                g: base.g / 4,
                ..base
            },
        ),
        ("P x4", base.with_p(base.p * 4)),
    ];
    for (name, m) in &variants {
        println!(
            "{:>12} {:>10} {:>12} {:>10}",
            name,
            optimal_broadcast_time(m),
            min_sum_time(m, 4096, m.p),
            optimal_broadcast_tree(m).root_fanout(),
        );
    }

    println!("\nconservative simplification (§3.1): raise o to g, drop g.");
    let simplified = base.o_raised_to_g();
    println!(
        "  broadcast {} -> {} cycles (conservative by at most 2x: {:.2}x)",
        optimal_broadcast_time(&base),
        optimal_broadcast_time(&simplified),
        optimal_broadcast_time(&simplified) as f64 / optimal_broadcast_time(&base) as f64
    );

    println!("\nlong messages (LogGP extension, §5.4): bulk gap G = g/16");
    let loggp = LogGP::new(base, base.g / 16);
    for words in [1u64, 8, 64, 512] {
        println!(
            "  {:>4} words: small-message train {:>6} cycles, bulk {:>6} cycles",
            words,
            loggp.small_message_time(words),
            loggp.long_message_time(words)
        );
    }
    if let Some(k) = loggp.bulk_break_even() {
        println!("  bulk wins from {k} words");
    }

    println!("\nTable 1 machines as LogP parameters (M = 160-bit messages):");
    for row in table1() {
        println!(
            "  {:<14} o ~ {:>6.0} cycles, L ~ {:>6.1} cycles ({:.0}% of T is endpoint overhead)",
            row.machine,
            row.suggested_logp_o(),
            row.suggested_logp_l(160),
            row.overhead_fraction(160) * 100.0
        );
    }
}
