//! Workload DSL walkthrough: write a program as text, load it with real
//! error reporting, run it on the classic engine, then re-run the same
//! program bit-identically on the sharded engine with parallel workers
//! and print the engine vitals.
//!
//! ```sh
//! cargo run --release --example workload_dsl
//! ```
//!
//! The golden corpus under `examples/workloads/` holds larger programs
//! (the paper's optimal broadcast, summation, and all-reduce) runnable
//! with the `wl_run` bench bin; `docs/WORKLOADS.md` has the grammar.

use logp::prelude::*;
use logp::wl::{load_workload, run_workload, to_text};

fn main() {
    // 1. A workload is a labeled DAG of send/recv/compute/barrier/timer
    //    statements; `after:` names same-processor dependencies, and
    //    cross-processor ordering rides on send/recv channel pairing.
    let text = "\
workload scatter_gather
procs 4

# Processor 0 prepares, then scatters to 1..3.
prep:  compute 10 @0
tx1:   send 0 -> 1 data=101 after: prep
tx2:   send 0 -> 2 data=102 after: prep
tx3:   send 0 -> 3 data=103 after: prep
rx1:   recv 0 -> 1
rx2:   recv 0 -> 2
rx3:   recv 0 -> 3

# Everyone works, then meets at a barrier.
w1:    compute 25 @1 after: rx1
w2:    compute 40 @2 after: rx2
w3:    compute 15 @3 after: rx3
sync0: barrier @0
sync1: barrier @1 after: w1
sync2: barrier @2 after: w2
sync3: barrier @3 after: w3

# Gather the results back on distinct tags.
u1:    send 1 -> 0 tag=1 after: sync1
u2:    send 2 -> 0 tag=2 after: sync2
u3:    send 3 -> 0 tag=3 after: sync3
g1:    recv 1 -> 0 tag=1
g2:    recv 2 -> 0 tag=2
g3:    recv 3 -> 0 tag=3
";
    // Loader errors carry a line:column span, the offending token, and
    // usually a "did you mean" hint — try breaking a statement above.
    let wl = load_workload(text).unwrap_or_else(|e| panic!("load failed: {e}"));
    println!(
        "loaded `{}`: {} nodes over {} processors",
        wl.name,
        wl.nodes.len(),
        wl.procs
    );

    // 2. Run it on the classic engine, on the paper's Figure 3 machine.
    let m = LogP::fig3();
    let classic = run_workload(&wl, &m, SimConfig::default()).expect("runs");
    println!(
        "\nclassic engine:   completion {} cycles",
        classic.completion
    );
    for (node, &t) in wl.nodes.iter().zip(classic.node_times.iter()) {
        if node.label.starts_with('g') {
            println!("  {:<5} finished at {t}", node.label);
        }
    }

    // 3. The same program on the sharded engine — 4 calendar lanes with
    //    2 parallel window workers — must agree bit-for-bit.
    let cfg = SimConfig::default().with_shards(4).with_workers(2);
    let sharded = run_workload(&wl, &m, cfg).expect("runs");
    assert_eq!(sharded.completion, classic.completion);
    assert_eq!(sharded.node_times, classic.node_times);
    let v = &sharded.result.vitals;
    println!(
        "\nsharded engine:   completion {} cycles (bit-identical), \
         {} lanes, {} windows, {} events",
        sharded.completion, v.lanes, v.windows, v.events
    );

    // 4. Programs round-trip through their canonical text form.
    let canon = to_text(&wl);
    assert_eq!(load_workload(&canon).expect("canonical text loads"), wl);
    println!("\ncanonical text round-trips ({} bytes)", canon.len());
}
