//! Distributed LU factorization (§4.2.1): factor a matrix across
//! simulated processors, verify against the sequential oracle, and use
//! the factors to solve a linear system.
//!
//! ```sh
//! cargo run --release --example lu_solver
//! ```

use logp::algos::lu::{lu_layout_time, lu_sequential, run_lu_column_cyclic, LuLayout, Matrix};
use logp::prelude::*;

/// Forward/back substitution with the packed LU factors.
fn solve(factors: &logp::algos::lu::LuFactors, b: &[f64]) -> Vec<f64> {
    let n = factors.lu.n;
    // Apply the row permutation to b.
    let pb: Vec<f64> = (0..n).map(|i| b[factors.perm[i]]).collect();
    // Ly = Pb (unit lower triangular).
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = pb[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            s -= factors.lu.get(i, k) * yk;
        }
        y[i] = s;
    }
    // Ux = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= factors.lu.get(i, k) * xk;
        }
        x[i] = s / factors.lu.get(i, i);
    }
    x
}

fn main() {
    let n = 48;
    let m = LogP::new(60, 20, 40, 8).unwrap();
    let a = Matrix::test_matrix(n, 1993);

    println!("distributed LU of a {n}x{n} system on {m}\n");
    let run = run_lu_column_cyclic(&m, &a, SimConfig::default());
    let seq = lu_sequential(&a);
    println!(
        "factorization: {} cycles, {} messages, residual {:.2e}",
        run.completion,
        run.messages,
        run.factors.residual(&a)
    );
    assert_eq!(
        run.factors.perm, seq.perm,
        "same pivoting decisions as sequential"
    );

    // Solve A x = b with a known solution.
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 1.0).collect();
    let b: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| a.get(i, j) * x_true[j]).sum())
        .collect();
    let x = solve(&run.factors, &b);
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("solve: max |x - x_true| = {err:.2e}");
    assert!(err < 1e-8);

    // Layout comparison (the reason scattered grid layouts won Linpack).
    println!("\nestimated factorization time by layout (n = 512, P = 16):");
    let big = LogP::new(60, 20, 40, 16).unwrap();
    for (name, layout) in [
        ("bad (row+col broadcast)", LuLayout::Bad),
        ("column blocked", LuLayout::ColumnBlocked),
        ("column scattered", LuLayout::ColumnScattered),
        ("grid blocked", LuLayout::GridBlocked),
        ("grid scattered", LuLayout::GridScattered),
    ] {
        println!(
            "  {:<26} {:>12} cycles",
            name,
            lu_layout_time(&big, 512, layout)
        );
    }
}
