//! Quickstart: define a LogP machine, analyze a collective, execute it on
//! the simulator, and write your own process.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use logp::core::broadcast::{optimal_broadcast_time, optimal_broadcast_tree};
use logp::core::summation::min_sum_time;
use logp::prelude::*;

/// A tiny custom program: a token ring. Processor 0 starts the token; each
/// processor forwards it to its right neighbor; processor 0 measures the
/// lap time.
struct RingHop {
    laps_left: u32,
    lap_started: Cycles,
    lap_times: SharedCell<Vec<Cycles>>,
}

impl Process for RingHop {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.me() == 0 {
            self.lap_started = ctx.now();
            ctx.send(1 % ctx.procs(), 0, Data::U64(1));
        }
    }

    fn on_message(&mut self, msg: &Message, ctx: &mut Ctx<'_>) {
        let token = msg.data.as_u64();
        if ctx.me() == 0 {
            let now = ctx.now();
            let lap = now - self.lap_started;
            self.lap_times.with(|v| v.push(lap));
            self.lap_started = now;
            self.laps_left -= 1;
            if self.laps_left == 0 {
                return;
            }
        }
        ctx.send((ctx.me() + 1) % ctx.procs(), 0, Data::U64(token + 1));
    }
}

fn main() {
    // 1. A machine is four numbers. This is the paper's Figure 3 machine.
    let m = LogP::fig3();
    println!("machine: {m}");
    println!(
        "  point-to-point message: {} cycles (2o + L)",
        m.point_to_point()
    );
    println!(
        "  remote read:            {} cycles (2L + 4o)",
        m.remote_read()
    );
    println!(
        "  network capacity:       {} messages/endpoint (⌈L/g⌉)",
        m.capacity()
    );

    // 2. Closed-form analysis: the optimal broadcast and summation.
    println!(
        "\noptimal broadcast of one datum to all {}: {} cycles",
        m.p,
        optimal_broadcast_time(&m)
    );
    let tree = optimal_broadcast_tree(&m);
    println!(
        "  root fan-out {} (the tree is unbalanced by design)",
        tree.root_fanout()
    );
    println!(
        "optimal summation of 1000 values: {} cycles",
        min_sum_time(&m, 1000, m.p)
    );

    // 3. Execute a custom program on the simulated machine. At large P,
    //    swap `SimConfig::default()` for `.with_shards(8)` (per-lane
    //    calendar queues) and `.with_workers(4)` (parallel window
    //    executor) — results stay bit-identical; see `examples/
    //    workload_dsl.rs` and the `shard_scale` bench.
    let lap_times: SharedCell<Vec<Cycles>> = SharedCell::new();
    let mut sim = Sim::new(m, SimConfig::default());
    for p in 0..m.p {
        sim.set_process(
            p,
            Box::new(RingHop {
                laps_left: 3,
                lap_started: 0,
                lap_times: lap_times.clone(),
            }),
        );
    }
    let result = sim.run().expect("ring terminates");
    let laps = lap_times.get();
    println!("\ntoken ring, 3 laps over {} processors:", m.p);
    for (i, lap) in laps.iter().enumerate() {
        println!(
            "  lap {}: {} cycles ({} hops x (2o + L) = {})",
            i + 1,
            lap,
            m.p,
            m.p as u64 * m.point_to_point()
        );
    }
    println!(
        "total simulated time: {} cycles, {} messages",
        result.stats.completion, result.stats.total_msgs
    );

    // 4. Calibrated machines: the paper's CM-5.
    let cm5 = MachinePreset::cm5();
    println!(
        "\nCM-5 preset: {} — o = {} µs, L = {} µs, g = {} µs, peak {} MB/s/proc",
        cm5.logp,
        cm5.cycles_to_us(cm5.logp.o),
        cm5.cycles_to_us(cm5.logp.l),
        cm5.cycles_to_us(cm5.logp.g),
        cm5.peak_bandwidth_mb_s()
    );
}
