//! Hierarchical LogP walkthrough: describe a cluster of multi-core
//! nodes as nested levels, see what topology awareness buys a
//! collective, and recover the structure by black-box probing.
//!
//! ```sh
//! cargo run --release --example hierarchy
//! ```
//!
//! The full handbook is `docs/HIERARCHY.md`; the crossover sweep this
//! example samples one point of is the `hier_sweep` bench binary.

use logp::algos::hier::{run_flat_broadcast_on, run_hier_allreduce, run_hier_broadcast};
use logp::calib::hier::{calibrate_hier, HierSimMachine};
use logp::calib::CalibConfig;
use logp::core::hier::{
    flat_broadcast_time_on, hier_allreduce_time, hier_broadcast_time, Hierarchy,
};
use logp::prelude::*;
use logp::wl::{load_workload, run_workload_hier};

fn main() {
    // A 32-rank machine: 4 nodes of 8 ranks. Inside a node messages see
    // the paper's Fig. 3 parameters; between nodes the wire is ~17x
    // longer and the NIC a bit slower.
    let h = Hierarchy::two_level((6, 2, 4), 8, (100, 10, 12), 4).expect("valid machine");
    println!("machine: {h}");
    println!(
        "rank 11 sits in node {} (path {:?})",
        h.path(11)[0],
        h.path(11)
    );
    println!(
        "  2 -> 5  pays the inner level: 2o+L = {} cycles",
        h.params_between(2, 5).point_to_point()
    );
    println!(
        "  2 -> 29 pays the outer level: 2o+L = {} cycles",
        h.params_between(2, 29).point_to_point()
    );

    // Broadcast: the hierarchical schedule (one long-haul send per
    // node, then cheap local trees) vs the topology-oblivious optimal
    // tree of the flat projection, both on the same machine.
    let hier = run_hier_broadcast(&h, 1.0, SimConfig::default());
    let flat = run_flat_broadcast_on(&h, 1.0, SimConfig::default());
    println!(
        "\nbroadcast to {} ranks: hierarchical {} vs flat-optimal {} cycles",
        h.p(),
        hier.completion,
        flat.completion
    );
    // The closed forms predicted exactly these numbers.
    assert_eq!(hier.completion, hier_broadcast_time(&h));
    assert_eq!(flat.completion, flat_broadcast_time_on(&h));

    // All-reduce along the same tree family, lanes aligned to nodes.
    let values: Vec<f64> = (0..h.p()).map(|q| q as f64).collect();
    let ar = run_hier_allreduce(&h, &values, SimConfig::default().with_shards(4));
    println!(
        "all-reduce: sum {} in {} cycles ({} messages)",
        ar.value, ar.completion, ar.messages
    );
    assert_eq!(ar.completion, hier_allreduce_time(&h));

    // Workloads run on hierarchies too: same DSL, level-aware prices.
    let wl = load_workload(&format!(
        "workload pair\nprocs {}\nnear: send 0 -> 1 data=7\ngot_near: recv 0 -> 1\n\
         far: send 0 -> 8 data=7\ngot_far: recv 0 -> 8\n",
        h.p()
    ))
    .expect("valid workload");
    let run = run_workload_hier(&wl, &h, SimConfig::default()).expect("runs");
    println!(
        "workload: node-local recv at {} cycles, cross-node recv at {}",
        run.node_times[1], run.node_times[3]
    );

    // Finally, close the loop: probe the machine as a black box and
    // recover both the structure and the per-level parameters.
    let cal = calibrate_hier(&mut HierSimMachine::new(h.clone()), &CalibConfig::quick());
    println!(
        "\nprobing recovered {} levels with group sizes {:?}",
        cal.depth(),
        cal.group_sizes
    );
    assert_eq!(cal.hierarchy, h, "calibration must round-trip exactly");
    println!("recovered machine: {}", cal.hierarchy);
}
