//! The paper's flagship workload: the hybrid-layout FFT (§4.1).
//!
//! Runs the data-carrying parallel FFT on the simulated CM-5, verifies
//! the numerics against a sequential transform, and compares the naive
//! and staggered remap schedules.
//!
//! ```sh
//! cargo run --release --example fft_remap
//! ```

use logp::algos::fft::kernel::{fft_in_place, max_error};
use logp::algos::fft::{fft_phases, run_parallel_fft};
use logp::prelude::*;

fn main() {
    let preset = MachinePreset::cm5();
    let m = preset.logp.with_p(16);
    let n: u64 = 1 << 12;

    // Real input signal.
    let input: Vec<Cplx> = (0..n)
        .map(|i| Cplx::new((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
        .collect();
    let mut reference = input.clone();
    fft_in_place(&mut reference);

    println!("hybrid-layout FFT of n = {n} complex points on {m}\n");
    for schedule in [RemapSchedule::Naive, RemapSchedule::Staggered] {
        let spec = FftRunSpec {
            n,
            schedule,
            local_cost: preset.local_elem_cost,
            compute: Some(ComputeModel::cm5()),
        };
        let run = run_parallel_fft(&m, &input, &spec, SimConfig::default());
        let err = max_error(&run.output, &reference);
        println!(
            "{:>10?}: {:>9} cycles ({:.2} ms), {} messages, {:>9} stall cycles, max error {:.2e}",
            schedule,
            run.completion,
            preset.cycles_to_us(run.completion) / 1000.0,
            run.messages,
            run.total_stall,
            err
        );
        assert!(
            err < 1e-8,
            "parallel FFT must match the sequential transform"
        );
    }

    // Phase-resolved timing at a larger size (compute charged by the
    // cache-aware model, remap simulated message-by-message).
    let big = 1 << 16;
    println!("\nphase breakdown at n = {big} (staggered schedule):");
    let ph = fft_phases(
        &m,
        &ComputeModel::cm5(),
        preset.local_elem_cost,
        big,
        RemapSchedule::Staggered,
        SimConfig::default(),
    );
    println!(
        "  phase I  (cyclic, local FFT):  {:>9} cycles at {} Mflops",
        ph.compute1, ph.mflops1
    );
    println!(
        "  remap    (all-to-all):         {:>9} cycles (predicted {})",
        ph.remap, ph.remap_predicted
    );
    println!(
        "  phase III (blocked, local FFT): {:>8} cycles at {} Mflops",
        ph.compute3, ph.mflops3
    );
    println!(
        "  total: {} cycles = {:.2} ms",
        ph.total(),
        preset.cycles_to_us(ph.total()) / 1000.0
    );
    println!(
        "  remap bandwidth: {:.2} MB/s/proc (predicted {:.2}, paper's asymptote 3.2)",
        ph.remap_mb_per_s(&preset),
        ph.predicted_mb_per_s(&preset)
    );
}
