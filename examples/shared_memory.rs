//! The shared-memory veneer of §3.2: remote reads, prefetching, and
//! remote atomics over explicit messages — plus black-box parameter
//! extraction (§7) to confirm the machine is what it claims.
//!
//! ```sh
//! cargo run --release --example shared_memory
//! ```

use logp::algos::am::{run_two_node, AmClient, AmCtx};
use logp::algos::measure::extract_params;
use logp::prelude::*;

/// Sum a remote array two ways: blocking reads (one at a time) vs
/// prefetching everything up front.
struct RemoteSummer {
    n: u64,
    prefetch: bool,
    received: u64,
    sum: f64,
    started: bool,
    result: SharedCell<(f64, Cycles)>,
}

impl AmClient for RemoteSummer {
    fn on_start(&mut self, am: &mut AmCtx<'_, '_>) {
        if self.prefetch {
            for a in 0..self.n {
                am.read(1, a);
            }
        } else {
            am.read(1, 0);
        }
        self.started = true;
    }

    fn on_value(&mut self, _req: u64, v: f64, am: &mut AmCtx<'_, '_>) {
        self.sum += v;
        self.received += 1;
        if self.received == self.n {
            let rec = (self.sum, am.now());
            self.result.with(|r| *r = rec);
        } else if !self.prefetch {
            am.read(1, self.received);
        }
    }
}

fn main() {
    let m = LogP::new(60, 20, 40, 2).unwrap(); // CM-5 calibration
    let n = 64u64;
    let cells: Vec<f64> = (0..n).map(|v| v as f64).collect();
    let expect: f64 = cells.iter().sum();

    println!("remote-memory access on {m}\n");
    println!(
        "single remote read costs 2L + 4o = {} cycles",
        m.remote_read()
    );

    for prefetch in [false, true] {
        let result: SharedCell<(f64, Cycles)> = SharedCell::new();
        run_two_node(
            &m,
            cells.clone(),
            RemoteSummer {
                n,
                prefetch,
                received: 0,
                sum: 0.0,
                started: false,
                result: result.clone(),
            },
            SimConfig::default(),
        );
        let (sum, done) = result.get();
        assert_eq!(sum, expect);
        println!(
            "summing {n} remote values with {:9}: {done:>6} cycles ({:.1} cycles/value)",
            if prefetch { "prefetch" } else { "blocking" },
            done as f64 / n as f64
        );
    }
    println!(
        "\nblocking pays the full round trip per value; prefetch pipelines at\n\
         the gap — §3.2: \"prefetch operations ... can be issued every g cycles\"."
    );

    // Trust, but verify: extract the machine's parameters by micro-benchmark.
    let p = extract_params(&m, 300, SimConfig::default());
    println!(
        "\nblack-box extraction (§7): L = {:.1}, o = {:.1}, send interval = {:.1} \
         (true: {}, {}, {})",
        p.l,
        p.o,
        p.send_interval,
        m.l,
        m.o,
        m.send_interval()
    );
}
