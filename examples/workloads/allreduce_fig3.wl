workload allreduce_reduce_bcast
procs 8
preset fig3

up0_1: recv 1 -> 0 tag=145
add0_1: compute 1 @0 after: up0_1
up0_2: recv 2 -> 0 tag=145
add0_2: compute 1 @0 after: up0_2
up0_4: recv 4 -> 0 tag=145
add0_4: compute 1 @0 after: up0_4
dn0_1: send 0 -> 1 tag=146 data=0 after: add0_1, add0_2, add0_4
dn0_2: send 0 -> 2 tag=146 data=0 after: add0_1, add0_2, add0_4
dn0_3: send 0 -> 3 tag=146 data=0 after: add0_1, add0_2, add0_4
dn0_5: send 0 -> 5 tag=146 data=0 after: add0_1, add0_2, add0_4
tx1: send 1 -> 0 tag=145 data=1
dn_rx1: recv 0 -> 1 tag=146
dn1_4: send 1 -> 4 tag=146 data=1 after: dn_rx1
dn1_6: send 1 -> 6 tag=146 data=1 after: dn_rx1
up2_3: recv 3 -> 2 tag=145
add2_3: compute 1 @2 after: up2_3
tx2: send 2 -> 0 tag=145 data=2 after: add2_3
dn_rx2: recv 0 -> 2 tag=146
dn2_7: send 2 -> 7 tag=146 data=2 after: dn_rx2
tx3: send 3 -> 2 tag=145 data=3
dn_rx3: recv 0 -> 3 tag=146
up4_5: recv 5 -> 4 tag=145
add4_5: compute 1 @4 after: up4_5
up4_6: recv 6 -> 4 tag=145
add4_6: compute 1 @4 after: up4_6
tx4: send 4 -> 0 tag=145 data=4 after: add4_5, add4_6
dn_rx4: recv 1 -> 4 tag=146
tx5: send 5 -> 4 tag=145 data=5
dn_rx5: recv 0 -> 5 tag=146
up6_7: recv 7 -> 6 tag=145
add6_7: compute 1 @6 after: up6_7
tx6: send 6 -> 4 tag=145 data=6 after: add6_7
dn_rx6: recv 1 -> 6 tag=146
tx7: send 7 -> 6 tag=145 data=7
dn_rx7: recv 2 -> 7 tag=146
