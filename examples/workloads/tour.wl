# A guided tour of the workload DSL: every statement kind, labels,
# tags, both payload forms, explicit `after:` dependency lists, a
# global barrier, and a timer. Loaded, executed, and trace-replayed by
# tests/workloads.rs; see docs/WORKLOADS.md for the grammar.

workload tour
procs 3
preset fig3

# Phase 1: processor 0 computes, then fans a token out.
warm:  compute 5 @0
t_a:   send 0 -> 1 tag=7 data=42 after: warm
t_b:   send 0 -> 2 tag=7 words=3 after: warm
r_a:   recv 0 -> 1 tag=7
r_b:   recv 0 -> 2 tag=7

# Each receiver does local work; processor 1 also arms a timer.
w_a:   compute 9 @1 after: r_a
alarm: timer 15 @1 after: r_a
w_b:   compute 4 @2 after: r_b

# A global barrier separates the phases (one statement per processor).
bar0:  barrier @0 after: t_a, t_b
bar1:  barrier @1 after: w_a
bar2:  barrier @2 after: w_b

# Phase 2: the workers report back on distinct tags.
u_a:   send 1 -> 0 tag=1 after: bar1
u_b:   send 2 -> 0 tag=2 after: bar2
f_a:   recv 1 -> 0 tag=1 after: bar0
f_b:   recv 2 -> 0 tag=2 after: bar0
done:  compute 1 @0 after: f_a, f_b
