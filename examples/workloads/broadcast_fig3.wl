workload optimal_broadcast
procs 8
preset fig3

tx0_1: send 0 -> 1 tag=66 data=48879
tx0_2: send 0 -> 2 tag=66 data=48879
tx0_3: send 0 -> 3 tag=66 data=48879
tx0_5: send 0 -> 5 tag=66 data=48879
rx1: recv 0 -> 1 tag=66
tx1_4: send 1 -> 4 tag=66 data=48879 after: rx1
tx1_6: send 1 -> 6 tag=66 data=48879 after: rx1
rx2: recv 0 -> 2 tag=66
tx2_7: send 2 -> 7 tag=66 data=48879 after: rx2
rx3: recv 0 -> 3 tag=66
rx4: recv 1 -> 4 tag=66
rx5: recv 0 -> 5 tag=66
rx6: recv 1 -> 6 tag=66
rx7: recv 2 -> 7 tag=66
