workload optimal_summation
procs 8
preset fig4

init0: compute 13 @0
rx0_7: recv 7 -> 0 tag=80
add0_7: compute 2 @0 after: rx0_7, init0
rx0_6: recv 6 -> 0 tag=80
add0_6: compute 2 @0 after: rx0_6, add0_7
rx0_4: recv 4 -> 0 tag=80
add0_4: compute 2 @0 after: rx0_4, add0_6
rx0_1: recv 1 -> 0 tag=80
add0_1: compute 1 @0 after: rx0_1, add0_4
init1: compute 11 @1
rx1_3: recv 3 -> 1 tag=80
add1_3: compute 2 @1 after: rx1_3, init1
rx1_2: recv 2 -> 1 tag=80
add1_2: compute 1 @1 after: rx1_2, add1_3
tx1: send 1 -> 0 tag=80 data=13 after: add1_2
init2: compute 8 @2
tx2: send 2 -> 1 tag=80 data=9 after: init2
init3: compute 4 @3
tx3: send 3 -> 1 tag=80 data=5 after: init3
init4: compute 11 @4
rx4_5: recv 5 -> 4 tag=80
add4_5: compute 1 @4 after: rx4_5, init4
tx4: send 4 -> 0 tag=80 data=12 after: add4_5
init5: compute 4 @5
tx5: send 5 -> 4 tag=80 data=5 after: init5
init6: compute 10 @6
tx6: send 6 -> 0 tag=80 data=11 after: init6
init7: compute 6 @7
tx7: send 7 -> 0 tag=80 data=7 after: init7
